package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork(1)
	f2 := parent.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different labels produced identical first draw")
	}
	// Forking must not perturb the parent stream.
	ref := NewRNG(7)
	_ = ref.Fork(1)
	_ = ref.Fork(2)
	for i := 0; i < 100; i++ {
		want := NewRNG(7)
		_ = want
	}
	p1 := parent.Uint64()
	r1 := ref.Uint64()
	if p1 != r1 {
		t.Fatalf("forking perturbed parent stream: %d vs %d", p1, r1)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64MeanVariance(t *testing.T) {
	r := NewRNG(5)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for k, c := range seen {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(6) value %d occurred %d times, want ~10000", k, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nUnbiasedSmallRange(t *testing.T) {
	r := NewRNG(13)
	counts := make([]int, 3)
	n := 90000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(3)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-float64(n)/3) > 1000 {
			t.Errorf("Uint64n(3) bucket %d = %d, want ~%d", i, c, n/3)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(19)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(23)
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(2, 0.7)
	}
	med := PercentileUnsorted(vals, 50)
	if want := math.Exp(2.0); math.Abs(med-want)/want > 0.05 {
		t.Errorf("lognormal median = %v, want ~%v", med, want)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 80, 600} {
		r := NewRNG(uint64(29 + mean))
		n := 40000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%v) negative", mean)
			}
			sum += v
			sq += v * v
		}
		m := sum / float64(n)
		variance := sq/float64(n) - m*m
		if math.Abs(m-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, m)
		}
		if math.Abs(variance-mean)/mean > 0.10 {
			t.Errorf("Poisson(%v) sample variance = %v", mean, variance)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := NewRNG(1)
	if v := r.Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d, want 0", v)
	}
	if v := r.Poisson(-3); v != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{{20, 0.3}, {200, 0.05}, {5000, 0.4}}
	for _, c := range cases {
		r := NewRNG(uint64(c.n))
		trials := 20000
		var sum float64
		for i := 0; i < trials; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", c.n, c.p, v)
			}
			sum += float64(v)
		}
		mean := sum / float64(trials)
		want := float64(c.n) * c.p
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := NewRNG(2)
	if v := r.Binomial(10, 0); v != 0 {
		t.Errorf("Binomial(10,0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Errorf("Binomial(10,1) = %d", v)
	}
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Errorf("Binomial(0,0.5) = %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(31)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(37)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestSampleIntsDistinct(t *testing.T) {
	r := NewRNG(41)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(100) + 1
		k := r.Intn(n + 1)
		got := r.SampleInts(n, k)
		if len(got) != k {
			t.Fatalf("SampleInts(%d,%d) returned %d values", n, k, len(got))
		}
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("SampleInts(%d,%d) invalid value %d in %v", n, k, v, got)
			}
			seen[v] = true
		}
	}
}

func TestSampleIntsCoverage(t *testing.T) {
	// Every element must be reachable: sample half of a small set many times.
	r := NewRNG(43)
	hits := make([]int, 10)
	for i := 0; i < 5000; i++ {
		for _, v := range r.SampleInts(10, 5) {
			hits[v]++
		}
	}
	for i, h := range hits {
		if h < 2000 || h > 3000 {
			t.Errorf("element %d hit %d times of 5000, want ~2500", i, h)
		}
	}
}

func TestSampleIntsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInts(2,3) did not panic")
		}
	}()
	NewRNG(1).SampleInts(2, 3)
}
