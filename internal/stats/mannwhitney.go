package stats

import (
	"errors"
	"math"
	"sort"
)

// MannWhitney is the result of a two-sample Mann–Whitney U test (Wilcoxon
// rank-sum): a nonparametric test of whether one distribution is
// stochastically greater than the other. The audit uses it to back claims
// like Figure 5's "higher fee-rates see smaller delays" with a significance
// level instead of eyeballing CDFs.
type MannWhitney struct {
	U1, U2 float64 // U statistics of sample x and sample y
	// Z is the tie-corrected normal approximation of the standardized U1.
	Z float64
	// PGreater is the one-sided p-value for H1: x stochastically greater
	// than y; PLess and PTwoSided follow the usual conventions.
	PGreater  float64
	PLess     float64
	PTwoSided float64
	// CommonLanguage is U1/(n1*n2): the probability a random x exceeds a
	// random y (ties counted half).
	CommonLanguage float64
}

// ErrSampleSize reports a Mann–Whitney test with an empty sample.
var ErrSampleSize = errors.New("stats: Mann-Whitney needs non-empty samples")

// MannWhitneyU runs the test on two samples using midranks for ties and the
// tie-corrected normal approximation (exact enumeration is unnecessary at
// the sample sizes the audits produce).
func MannWhitneyU(x, y []float64) (MannWhitney, error) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return MannWhitney{}, ErrSampleSize
	}
	type obs struct {
		v     float64
		fromX bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie bookkeeping.
	n := n1 + n2
	var rankSumX float64
	var tieTerm float64 // Σ (t³ - t) over tie groups
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		midrank := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			if all[k].fromX {
				rankSumX += midrank
			}
		}
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := rankSumX - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1
	mean := fn1 * fn2 / 2
	fN := float64(n)
	variance := fn1 * fn2 / 12 * ((fN + 1) - tieTerm/(fN*(fN-1)))
	res := MannWhitney{U1: u1, U2: u2, CommonLanguage: u1 / (fn1 * fn2)}
	if variance <= 0 {
		// All observations identical: no evidence either way.
		res.PGreater, res.PLess, res.PTwoSided = 0.5, 0.5, 1
		return res, nil
	}
	sd := math.Sqrt(variance)
	// Continuity correction of 0.5 toward the mean.
	zG := (u1 - 0.5 - mean) / sd
	zL := (u1 + 0.5 - mean) / sd
	res.Z = (u1 - mean) / sd
	res.PGreater = NormalSF(zG)
	res.PLess = NormalCDF(zL)
	res.PTwoSided = 2 * math.Min(res.PGreater, res.PLess)
	if res.PTwoSided > 1 {
		res.PTwoSided = 1
	}
	return res, nil
}
