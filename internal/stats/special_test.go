package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		// I_x(1, 1) = x (uniform CDF).
		{1, 1, 0.25, 0.25},
		{1, 1, 0.9, 0.9},
		// I_x(1, b) = 1 - (1-x)^b.
		{1, 3, 0.5, 1 - math.Pow(0.5, 3)},
		// I_x(a, 1) = x^a.
		{4, 1, 0.3, math.Pow(0.3, 4)},
		// Symmetric case I_{1/2}(a, a) = 1/2.
		{5, 5, 0.5, 0.5},
		{0.3, 0.3, 0.5, 0.5},
		// I_0.2(2,5) via the binomial identity: Pr(B >= 2), B ~ Bin(6, 0.2).
		{2, 5, 0.2, 0.34464},
		// I_0.8(10,2) = Pr(B >= 10), B ~ Bin(11, 0.8) = 11*0.8^10*0.2 + 0.8^11.
		{10, 2, 0.8, 0.3221225472},
		// Arcsine law: I_x(1/2,1/2) = (2/pi) asin(sqrt(x)).
		{0.5, 0.5, 0.3, 2 / math.Pi * math.Asin(math.Sqrt(0.3))},
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if !approxEq(got, c.want, 1e-6) {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
	if got := RegIncBeta(-1, 3, 0.5); !math.IsNaN(got) {
		t.Errorf("negative a gave %v, want NaN", got)
	}
}

func TestRegIncBetaMonotoneInX(t *testing.T) {
	if err := quick.Check(func(ra, rb uint16, steps uint8) bool {
		a := 0.1 + float64(ra%500)/10
		b := 0.1 + float64(rb%500)/10
		prev := 0.0
		n := int(steps%20) + 2
		for i := 1; i <= n; i++ {
			x := float64(i) / float64(n+1)
			v := RegIncBeta(a, b, x)
			if math.IsNaN(v) || v < prev-1e-12 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a, b) + I_{1-x}(b, a) = 1.
	if err := quick.Check(func(ra, rb, rx uint16) bool {
		a := 0.2 + float64(ra%300)/7
		b := 0.2 + float64(rb%300)/7
		x := (float64(rx%998) + 1) / 1000
		s := RegIncBeta(a, b, x) + RegIncBeta(b, a, 1-x)
		return approxEq(s, 1, 1e-9)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRegGammaKnownValues(t *testing.T) {
	cases := []struct {
		a, x, wantP float64
	}{
		// P(1, x) = 1 - e^{-x}.
		{1, 0.5, 1 - math.Exp(-0.5)},
		{1, 3, 1 - math.Exp(-3)},
		// P(1/2, x) = erf(sqrt(x)).
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		// Cross-checked against scipy.special.gammainc.
		{3, 2, 0.3233235838},
		{10, 10, 0.5420702855},
	}
	for _, c := range cases {
		if got := RegGammaP(c.a, c.x); !approxEq(got, c.wantP, 1e-8) {
			t.Errorf("RegGammaP(%v,%v) = %v, want %v", c.a, c.x, got, c.wantP)
		}
		if got := RegGammaQ(c.a, c.x); !approxEq(got, 1-c.wantP, 1e-8) {
			t.Errorf("RegGammaQ(%v,%v) = %v, want %v", c.a, c.x, got, 1-c.wantP)
		}
	}
}

func TestRegGammaComplement(t *testing.T) {
	if err := quick.Check(func(ra, rx uint16) bool {
		a := 0.1 + float64(ra%800)/11
		x := float64(rx%1000) / 9
		s := RegGammaP(a, x) + RegGammaQ(a, x)
		return approxEq(s, 1, 1e-10)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !approxEq(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalSFDeepTail(t *testing.T) {
	// NormalSF must stay accurate where 1-CDF would cancel.
	got := NormalSF(8)
	want := 6.22096057427178e-16
	if !approxEq(got, want, 1e-6) {
		t.Errorf("NormalSF(8) = %v, want %v", got, want)
	}
	// exp(-z^2/2) stays representable up to z ≈ 38; check a deep but
	// representable tail stays strictly positive.
	if got := NormalSF(35); got <= 0 {
		t.Errorf("NormalSF(35) underflowed to %v", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-5, 0.001, 0.025, 0.2, 0.5, 0.7, 0.975, 0.9999, 1 - 1e-9} {
		z := NormalQuantile(p)
		back := NormalCDF(z)
		if !approxEq(back, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile endpoints not infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) {
		t.Error("quantile of negative p not NaN")
	}
}

func TestChiSquaredSFKnownValues(t *testing.T) {
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		// SF of chi2(2) is exp(-x/2).
		{4, 2, math.Exp(-2)},
		{10, 2, math.Exp(-5)},
		// scipy.stats.chi2.sf(7.81, 3) ≈ 0.05004.
		{7.814727903251179, 3, 0.05},
		// scipy.stats.chi2.sf(23.21, 10) ≈ 0.01.
		{23.209251158954356, 10, 0.01},
	}
	for _, c := range cases {
		if got := ChiSquaredSF(c.x, c.k); !approxEq(got, c.want, 1e-6) {
			t.Errorf("ChiSquaredSF(%v,%d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
	if got := ChiSquaredSF(-1, 3); got != 1 {
		t.Errorf("ChiSquaredSF(-1,3) = %v, want 1", got)
	}
	if got := ChiSquaredSF(1, 0); !math.IsNaN(got) {
		t.Errorf("ChiSquaredSF with k=0 = %v, want NaN", got)
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.k); !approxEq(got, c.want, 1e-10) {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if got := LogChoose(5, 7); !math.IsInf(got, -1) {
		t.Errorf("LogChoose(5,7) = %v, want -Inf", got)
	}
}

func TestLogChoosePascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k), verified in linear space for
	// moderate n where exp is exact enough.
	for n := int64(2); n <= 40; n++ {
		for k := int64(1); k < n; k++ {
			lhs := math.Exp(LogChoose(n, k))
			rhs := math.Exp(LogChoose(n-1, k-1)) + math.Exp(LogChoose(n-1, k))
			if !approxEq(lhs, rhs, 1e-9) {
				t.Fatalf("Pascal identity failed at n=%d k=%d: %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

func TestLogBeta(t *testing.T) {
	// B(1,1)=1, B(2,3)=1/12, B(0.5,0.5)=pi.
	cases := []struct{ a, b, want float64 }{
		{1, 1, 0},
		{2, 3, math.Log(1.0 / 12)},
		{0.5, 0.5, math.Log(math.Pi)},
	}
	for _, c := range cases {
		if got := LogBeta(c.a, c.b); !approxEq(got, c.want, 1e-12) {
			t.Errorf("LogBeta(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
