package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	if e.Len() != 3 {
		t.Fatalf("Len = %d", e.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 1.0 / 3}, {1.5, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); !approxEq(got, c.want, 1e-12) && !(got == 0 && c.want == 0) {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Min() != 1 || e.Max() != 3 {
		t.Errorf("Min/Max = %v/%v", e.Min(), e.Max())
	}
}

func TestECDFDuplicates(t *testing.T) {
	e := NewECDF([]float64{2, 2, 2, 5})
	if got := e.Eval(2); !approxEq(got, 0.75, 1e-12) {
		t.Errorf("Eval(2) with duplicates = %v, want 0.75", got)
	}
	if got := e.Eval(1.999); got != 0 {
		t.Errorf("Eval(1.999) = %v, want 0", got)
	}
}

func TestECDFDropsNaN(t *testing.T) {
	e := NewECDF([]float64{1, math.NaN(), 2})
	if e.Len() != 2 {
		t.Fatalf("NaN not dropped: Len = %d", e.Len())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if !math.IsNaN(e.Eval(1)) || !math.IsNaN(e.Quantile(0.5)) || !math.IsNaN(e.Min()) || !math.IsNaN(e.Max()) {
		t.Error("empty ECDF should return NaN everywhere")
	}
	if pts := e.Points(5); pts != nil {
		t.Errorf("empty Points = %v", pts)
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, v)
			}
		}
		if len(sample) == 0 {
			return true
		}
		e := NewECDF(sample)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			x := e.Quantile(q)
			// F(Quantile(q)) >= q must always hold.
			if e.Eval(x) < q-1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestECDFEvalMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, v)
			}
		}
		if len(sample) < 2 {
			return true
		}
		e := NewECDF(sample)
		xs := append([]float64(nil), sample...)
		sort.Float64s(xs)
		prev := -1.0
		for _, x := range xs {
			f := e.Eval(x)
			if f < prev {
				return false
			}
			prev = f
		}
		return prev == 1
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = float64(i)
	}
	e := NewECDF(sample)
	pts := e.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points(10) returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Fatalf("points not monotone at %d: %+v", i, pts)
		}
	}
	if last := pts[len(pts)-1]; last.F != 1 {
		t.Errorf("last point F = %v, want 1", last.F)
	}
	// More points than observations clamps to sample size.
	small := NewECDF([]float64{1, 2, 3})
	if got := small.Points(10); len(got) != 3 {
		t.Errorf("Points clamp: got %d", len(got))
	}
	if got := NewECDF([]float64{5}).Points(1); len(got) != 1 || got[0].F != 1 {
		t.Errorf("single point series wrong: %+v", got)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3, 4, 5})
	b := NewECDF([]float64{1, 2, 3, 4, 5})
	if d := a.KolmogorovSmirnov(b); d != 0 {
		t.Errorf("identical samples KS = %v", d)
	}
	c := NewECDF([]float64{100, 101, 102})
	if d := a.KolmogorovSmirnov(c); !approxEq(d, 1, 1e-12) {
		t.Errorf("disjoint samples KS = %v, want 1", d)
	}
	if d := a.KolmogorovSmirnov(NewECDF(nil)); !math.IsNaN(d) {
		t.Errorf("KS vs empty = %v, want NaN", d)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !approxEq(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample std with n-1: variance = 32/7.
	if want := math.Sqrt(32.0 / 7); !approxEq(s.Std, want, 1e-12) {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !approxEq(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSummarizeEmptyAndNaN(t *testing.T) {
	s := Summarize([]float64{math.NaN()})
	if s.N != 0 || !math.IsNaN(s.Mean) {
		t.Errorf("all-NaN summary: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !approxEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) || !math.IsNaN(Percentile(sorted, -1)) || !math.IsNaN(Percentile(sorted, 101)) {
		t.Error("invalid percentile arguments should return NaN")
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestMeanKahan(t *testing.T) {
	// 1 followed by many tiny values: naive summation loses them.
	sample := make([]float64, 1_000_001)
	sample[0] = 1
	for i := 1; i < len(sample); i++ {
		sample[i] = 1e-16
	}
	got := Mean(sample)
	want := (1 + 1e-16*1e6) / 1_000_001
	if !approxEq(got, want, 1e-9) {
		t.Errorf("Kahan mean = %v, want %v", got, want)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStd(t *testing.T) {
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single element should be NaN")
	}
	if got := Variance([]float64{1, 1, 1}); got != 0 {
		t.Errorf("Variance of constants = %v", got)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 3}, []float64{1, 1}); !approxEq(got, 2, 1e-12) {
		t.Errorf("WeightedMean = %v", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{0, 1}); !approxEq(got, 3, 1e-12) {
		t.Errorf("WeightedMean = %v", got)
	}
	if !math.IsNaN(WeightedMean([]float64{1}, []float64{1, 2})) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(WeightedMean([]float64{1}, []float64{0})) {
		t.Error("zero weight sum should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(1, 2, 4) // the paper's congestion bins, in MB
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 0.9, 1.0, 1.5, 2.0, 3, 4, 5, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	want := []int64{3, 2, 2, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d count = %d, want %d (counts=%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 9 {
		t.Errorf("Total = %d", h.Total())
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if !approxEq(sum, 1, 1e-12) {
		t.Errorf("fractions sum to %v", sum)
	}
	if h.BinLabel(0, "MB") == "" || h.BinLabel(3, "MB") == "" || h.BinLabel(1, "MB") == "" {
		t.Error("empty bin labels")
	}
}

func TestHistogramEdgeValidation(t *testing.T) {
	if _, err := NewHistogram(2, 1); err == nil {
		t.Error("descending edges accepted")
	}
	if _, err := NewHistogram(1, 1); err == nil {
		t.Error("duplicate edges accepted")
	}
	h, _ := NewHistogram()
	h.Observe(5)
	if h.Counts[0] != 1 {
		t.Error("edgeless histogram broken")
	}
	if h.Fractions() == nil {
		t.Error("nonempty histogram returned nil fractions")
	}
	if (&Histogram{Counts: make([]int64, 1)}).Fractions() != nil {
		t.Error("empty histogram should return nil fractions")
	}
}

func TestLogBins(t *testing.T) {
	edges, err := LogBins(1e-6, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 7 {
		t.Fatalf("len = %d", len(edges))
	}
	if !approxEq(edges[0], 1e-6, 1e-9) || !approxEq(edges[6], 1, 1e-9) {
		t.Errorf("endpoints: %v", edges)
	}
	for i := 1; i < len(edges); i++ {
		ratio := edges[i] / edges[i-1]
		if !approxEq(ratio, 10, 1e-6) {
			t.Errorf("ratio %d = %v, want 10", i, ratio)
		}
	}
	if _, err := LogBins(0, 1, 3); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := LogBins(2, 1, 3); err == nil {
		t.Error("hi<lo accepted")
	}
}
