// Package stats provides the statistical toolkit the audit engine is built
// on: a deterministic random number generator, special functions (log-gamma,
// regularized incomplete beta and gamma), exact and approximate binomial
// tests, Fisher's method for combining p-values, empirical CDFs, quantiles,
// histograms, and summary statistics.
//
// Everything is implemented from scratch on the standard library so that the
// simulation and the audits are reproducible bit-for-bit across runs and
// platforms.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// SplitMix64 for stream derivation and xoshiro256** for generation. It is
// not safe for concurrent use; derive independent streams with Fork instead
// of sharing one generator across goroutines.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for NormFloat64 (polar method)
	haveSpare bool
	spare     float64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used to seed the main generator and to derive forked streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent substream identified by label. Two forks of
// the same generator with different labels produce uncorrelated streams, and
// forking does not disturb the parent stream.
func (r *RNG) Fork(label uint64) *RNG {
	// Mix the parent state with the label through SplitMix64 so forks are
	// stable regardless of how much the parent has been consumed since
	// creation would not hold; instead we hash the parent's *current* state.
	sm := r.s[0] ^ (r.s[1] << 1) ^ (r.s[2] >> 1) ^ r.s[3] ^ (label * 0xd1342543de82ef95)
	return NewRNG(splitmix64(&sm))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) without modulo bias
// (Lemire's multiply-shift rejection method).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// NormFloat64 returns a standard normal deviate using the Marsaglia polar
// method with a cached spare.
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponentially distributed deviate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a deviate whose logarithm is normal with the given
// location mu and scale sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson returns a Poisson-distributed count with the given mean. For small
// means it uses Knuth's product method; for large means it uses the PTRS
// transformed-rejection method of Hörmann (1993), which stays O(1).
func (r *RNG) Poisson(mean float64) int64 {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := int64(0)
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		// Hörmann PTRS.
		b := 0.931 + 2.53*math.Sqrt(mean)
		a := -0.059 + 0.02483*b
		invAlpha := 1.1239 + 1.1328/(b-3.4)
		vr := 0.9277 - 3.6224/(b-2)
		for {
			u := r.Float64() - 0.5
			v := r.Float64()
			us := 0.5 - math.Abs(u)
			k := math.Floor((2*a/us+b)*u + mean + 0.43)
			if us >= 0.07 && v <= vr {
				return int64(k)
			}
			if k < 0 || (us < 0.013 && v > us) {
				continue
			}
			lg, _ := math.Lgamma(k + 1)
			if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-lg {
				return int64(k)
			}
		}
	}
}

// Binomial returns a Binomial(n, p) deviate. It uses inversion by repeated
// Bernoulli draws for small n and a normal approximation with clamping only
// where exactness is not required by callers (sampling workloads, never
// p-values).
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 64 {
		var k int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// BTPE would be the textbook choice; a Poisson/normal split is accurate
	// enough for workload sampling at the sizes we use.
	mean := float64(n) * p
	if mean < 30 {
		// Thin a Poisson at low mean: rejection against the exact pmf ratio
		// is unnecessary for workload purposes; inversion is fine here.
		var k int64
		q := math.Pow(1-p, float64(n))
		u := r.Float64()
		cum := q
		for k = 0; cum < u && k < n; k++ {
			q = q * float64(n-k) / float64(k+1) * p / (1 - p)
			cum += q
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int64(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleInts returns k distinct indices drawn uniformly from [0, n) in
// selection order. It panics if k > n or either is negative.
func (r *RNG) SampleInts(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("stats: SampleInts with invalid arguments")
	}
	// Floyd's algorithm: O(k) expected, no O(n) scratch.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
