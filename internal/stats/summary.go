package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper reports for its table
// rows (e.g., Table 5 and Appendix G): count, mean, standard deviation,
// extrema, and quartiles.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary over the sample, ignoring NaNs. An empty
// (or all-NaN) sample yields a Summary with N == 0 and NaN moments.
func Summarize(sample []float64) Summary {
	clean := make([]float64, 0, len(sample))
	for _, v := range sample {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	s := Summary{N: len(clean)}
	if s.N == 0 {
		s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max =
			math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return s
	}
	sort.Float64s(clean)
	s.Min = clean[0]
	s.Max = clean[s.N-1]
	s.Mean = Mean(clean)
	s.Std = Std(clean)
	s.P25 = Percentile(clean, 25)
	s.Median = Percentile(clean, 50)
	s.P75 = Percentile(clean, 75)
	return s
}

// String renders the summary in a compact single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max)
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	// Kahan summation: the congestion series sum millions of small values.
	var sum, comp float64
	for _, v := range sample {
		y := v - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(sample))
}

// Variance returns the unbiased sample variance (n-1 denominator), or NaN
// when fewer than two observations are available.
func Variance(sample []float64) float64 {
	n := len(sample)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(sample)
	var ss float64
	for _, v := range sample {
		d := v - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Std returns the unbiased sample standard deviation.
func Std(sample []float64) float64 {
	return math.Sqrt(Variance(sample))
}

// Percentile returns the p-th percentile (p in [0, 100]) of an already
// *sorted* sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 || math.IsNaN(p) || p < 0 || p > 100 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileUnsorted sorts a copy of the sample and returns its p-th
// percentile.
func PercentileUnsorted(sample []float64, p float64) float64 {
	c := append([]float64(nil), sample...)
	sort.Float64s(c)
	return Percentile(c, p)
}

// WeightedMean returns Σ w_i x_i / Σ w_i, or NaN if the weights sum to zero
// or the slices differ in length.
func WeightedMean(x, w []float64) float64 {
	if len(x) != len(w) || len(x) == 0 {
		return math.NaN()
	}
	var num, den float64
	for i := range x {
		num += x[i] * w[i]
		den += w[i]
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
