package stats

import (
	"errors"
	"fmt"
	"math"
)

// The paper's differential-prioritization tests (§5.1) are one-sided
// binomial tests: given a miner with normalized hash rate θ0, y blocks that
// contain at least one transaction of interest, and x of those blocks mined
// by that miner, the acceleration test computes
//
//	p = Pr(B >= x),  B ~ Binomial(y, θ0)
//
// and the deceleration test computes Pr(B <= x). This file provides exact
// tail probabilities (two independent methods, cross-checked in tests), the
// normal approximation the paper gives for large y (§5.1.3), and Fisher's
// method for combining per-window p-values.

// Alternative selects the tail of a one-sided binomial test.
type Alternative int

const (
	// Greater tests H1: θ > θ0 (acceleration). The p-value is Pr(B >= x).
	Greater Alternative = iota
	// Less tests H1: θ < θ0 (deceleration). The p-value is Pr(B <= x).
	Less
)

// String returns the conventional name of the alternative hypothesis.
func (a Alternative) String() string {
	switch a {
	case Greater:
		return "greater"
	case Less:
		return "less"
	default:
		return fmt.Sprintf("Alternative(%d)", int(a))
	}
}

// ErrInvalidTest reports a binomial test invoked with out-of-domain
// arguments.
var ErrInvalidTest = errors.New("stats: invalid binomial test arguments")

// BinomialTest is the result of a one-sided exact binomial test.
type BinomialTest struct {
	X           int64       // observed successes (blocks mined by m)
	Y           int64       // trials (blocks containing c-transactions)
	Theta0      float64     // null success probability (normalized hash rate)
	Alt         Alternative // tested tail
	P           float64     // exact p-value
	PNormal     float64     // normal-approximation p-value (§5.1.3)
	Significant bool        // P < the size used when testing (see TestSize)
}

// TestSize is the size α of the test used throughout the paper's analyses.
const TestSize = 0.01

// StrongSize is the stricter threshold (p < 0.001) at which the paper calls
// out acceleration findings in Tables 2 and 3.
const StrongSize = 0.001

// ExactBinomialTest computes a one-sided binomial test with an exact tail
// probability (via the regularized incomplete beta function) and the normal
// approximation alongside it.
func ExactBinomialTest(x, y int64, theta0 float64, alt Alternative) (BinomialTest, error) {
	if y < 0 || x < 0 || x > y || math.IsNaN(theta0) || theta0 < 0 || theta0 > 1 {
		return BinomialTest{}, fmt.Errorf("%w: x=%d y=%d theta0=%v", ErrInvalidTest, x, y, theta0)
	}
	t := BinomialTest{X: x, Y: y, Theta0: theta0, Alt: alt}
	switch alt {
	case Greater:
		t.P = BinomialSF(x-1, y, theta0) // Pr(B >= x) = Pr(B > x-1)
	case Less:
		t.P = BinomialCDF(x, y, theta0)
	default:
		return BinomialTest{}, fmt.Errorf("%w: unknown alternative %d", ErrInvalidTest, int(alt))
	}
	t.PNormal = NormalApproxP(x, y, theta0, alt)
	t.Significant = t.P < TestSize
	return t, nil
}

// BinomialCDF returns Pr(B <= k) for B ~ Binomial(n, p), exactly, using the
// identity Pr(B <= k) = I_{1-p}(n-k, k+1).
func BinomialCDF(k, n int64, p float64) float64 {
	switch {
	case n < 0 || math.IsNaN(p):
		return math.NaN()
	case k < 0:
		return 0
	case k >= n:
		return 1
	case p <= 0:
		return 1
	case p >= 1:
		return 0 // k < n and all mass at n
	}
	return RegIncBeta(float64(n-k), float64(k+1), 1-p)
}

// BinomialSF returns Pr(B > k) = 1 - CDF(k), exactly, using the identity
// Pr(B > k) = I_p(k+1, n-k).
func BinomialSF(k, n int64, p float64) float64 {
	switch {
	case n < 0 || math.IsNaN(p):
		return math.NaN()
	case k < 0:
		return 1
	case k >= n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	return RegIncBeta(float64(k+1), float64(n-k), p)
}

// BinomialPMF returns Pr(B = k) computed in log space, stable for large n.
func BinomialPMF(k, n int64, p float64) float64 {
	switch {
	case n < 0 || k < 0 || k > n || math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		if k == 0 {
			return 1
		}
		return 0
	case p == 1:
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// BinomialSFSummed returns Pr(B >= x) by direct log-space summation of the
// pmf. It is O(y - x) and exists as an independent cross-check of
// BinomialSF in tests, and as the reference implementation for the
// approximation ablation bench.
func BinomialSFSummed(x, y int64, p float64) float64 {
	if x <= 0 {
		return 1
	}
	if x > y {
		return 0
	}
	sum := 0.0
	for k := x; k <= y; k++ {
		sum += BinomialPMF(k, y, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// NormalApproxP computes the paper's large-y normal approximation of the
// one-sided p-value: Φ((x - yθ0)/sqrt(yθ0(1-θ0))) for deceleration and the
// complementary tail for acceleration. A half-unit continuity correction is
// applied, which keeps the approximation usable at moderate y.
func NormalApproxP(x, y int64, theta0 float64, alt Alternative) float64 {
	if y <= 0 || theta0 <= 0 || theta0 >= 1 {
		// Degenerate null: tails are 0/1 and are handled exactly.
		switch alt {
		case Greater:
			return BinomialSF(x-1, y, theta0)
		default:
			return BinomialCDF(x, y, theta0)
		}
	}
	mean := float64(y) * theta0
	sd := math.Sqrt(float64(y) * theta0 * (1 - theta0))
	switch alt {
	case Greater:
		return NormalSF((float64(x) - 0.5 - mean) / sd)
	default:
		return NormalCDF((float64(x) + 0.5 - mean) / sd)
	}
}

// FisherCombined combines independent p-values with Fisher's method
// (§5.1.3): X = -2 Σ ln p_i follows a chi-squared distribution with 2k
// degrees of freedom under the global null. Zero p-values are clamped to
// the smallest positive double (2^-1074 ≈ 4.9e-324) so a single degenerate
// window contributes a large finite 2148·ln2 ≈ 1488.9 to the statistic
// instead of +Inf/NaN; the resulting combined p-value still reports
// overwhelming evidence, which is the right reading of an exact zero.
func FisherCombined(pvalues []float64) (statistic float64, p float64, err error) {
	if len(pvalues) == 0 {
		return 0, 0, errors.New("stats: FisherCombined needs at least one p-value")
	}
	for _, pv := range pvalues {
		if math.IsNaN(pv) || pv < 0 || pv > 1 {
			return 0, 0, fmt.Errorf("stats: FisherCombined p-value %v out of [0,1]", pv)
		}
		if pv < math.SmallestNonzeroFloat64 {
			pv = math.SmallestNonzeroFloat64
		}
		statistic += -2 * logPValue(pv)
	}
	return statistic, ChiSquaredSF(statistic, 2*len(pvalues)), nil
}

// logPValue is ln(pv) for pv in (0, 1]. math.Log loses the subnormal
// exponent range on some platforms (ln(2^-1074) comes back as ln(2^-1023)),
// which would make the Fisher statistic platform-dependent for extreme
// p-values; decomposing via Frexp keeps the full exponent: ln(f·2^e) =
// ln(f) + e·ln 2 with f in [0.5, 1), where math.Log is exact.
func logPValue(pv float64) float64 {
	if pv >= 2.2250738585072014e-308 { // smallest normal float64
		return math.Log(pv)
	}
	frac, exp := math.Frexp(pv)
	return math.Log(frac) + float64(exp)*math.Ln2
}
