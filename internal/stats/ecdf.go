package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is an empty distribution; use NewECDF to build one.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample. The input slice is copied; NaNs
// are dropped.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, 0, len(sample))
	for _, v := range sample {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the number of observations.
func (e *ECDF) Len() int { return len(e.sorted) }

// Eval returns F(x) = fraction of observations <= x.
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// over equal values to make the CDF right-continuous (<= x).
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th sample quantile for q in [0, 1] using the
// nearest-rank definition (inverse of Eval).
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	if q == 0 {
		return e.sorted[0]
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return e.sorted[i]
}

// Min returns the smallest observation.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest observation.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Values returns the sorted observations. The returned slice is shared with
// the ECDF and must not be modified.
func (e *ECDF) Values() []float64 { return e.sorted }

// Points returns at most n (x, F(x)) pairs suitable for plotting the CDF
// as a step series. Points are taken at evenly spaced ranks so the series
// is faithful for any sample size.
func (e *ECDF) Points(n int) []CDFPoint {
	m := len(e.sorted)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		rank := (i*(m-1) + (n-1)/2) / max(n-1, 1)
		if n == 1 {
			rank = m - 1
		}
		pts = append(pts, CDFPoint{X: e.sorted[rank], F: float64(rank+1) / float64(m)})
	}
	return pts
}

// CDFPoint is one (x, F(x)) sample of a distribution series.
type CDFPoint struct {
	X float64
	F float64
}

// KolmogorovSmirnov returns the two-sample KS statistic between e and other:
// the supremum distance between the two empirical CDFs.
func (e *ECDF) KolmogorovSmirnov(other *ECDF) float64 {
	if e.Len() == 0 || other.Len() == 0 {
		return math.NaN()
	}
	d := 0.0
	for _, x := range e.sorted {
		if diff := math.Abs(e.Eval(x) - other.Eval(x)); diff > d {
			d = diff
		}
	}
	for _, x := range other.sorted {
		if diff := math.Abs(e.Eval(x) - other.Eval(x)); diff > d {
			d = diff
		}
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
