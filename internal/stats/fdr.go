package stats

import (
	"errors"
	"sort"
)

// BenjaminiHochberg computes q-values (adjusted p-values controlling the
// false discovery rate) for a family of hypotheses. The self-interest audit
// tests every (transaction owner, mining pool) combination — dozens of
// hypotheses — so reporting BH-adjusted values guards the Table 2 style
// findings against multiple-testing artifacts, a correction the paper
// itself does not apply.
//
// The returned slice is aligned with the input: q[i] adjusts p[i].
func BenjaminiHochberg(pvalues []float64) ([]float64, error) {
	m := len(pvalues)
	if m == 0 {
		return nil, errors.New("stats: BenjaminiHochberg needs at least one p-value")
	}
	type idxP struct {
		i int
		p float64
	}
	sorted := make([]idxP, m)
	for i, p := range pvalues {
		if p < 0 || p > 1 || p != p {
			return nil, errors.New("stats: p-value out of [0,1]")
		}
		sorted[i] = idxP{i, p}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].p < sorted[b].p })
	q := make([]float64, m)
	// Step-up: q_(k) = min over j >= k of p_(j) * m / j.
	minSoFar := 1.0
	for k := m - 1; k >= 0; k-- {
		val := sorted[k].p * float64(m) / float64(k+1)
		if val < minSoFar {
			minSoFar = val
		}
		q[sorted[k].i] = minSoFar
	}
	return q, nil
}

// FDRReject returns which hypotheses the BH procedure rejects at the given
// FDR level alpha, aligned with the input p-values.
func FDRReject(pvalues []float64, alpha float64) ([]bool, error) {
	q, err := BenjaminiHochberg(pvalues)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(q))
	for i, v := range q {
		out[i] = v <= alpha
	}
	return out, nil
}
