package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, c := range []struct {
		n int64
		p float64
	}{{10, 0.3}, {50, 0.07}, {200, 0.5}, {1000, 0.9}} {
		sum := 0.0
		for k := int64(0); k <= c.n; k++ {
			sum += BinomialPMF(k, c.n, c.p)
		}
		if !approxEq(sum, 1, 1e-9) {
			t.Errorf("pmf(n=%d,p=%v) sums to %v", c.n, c.p, sum)
		}
	}
}

func TestBinomialPMFSmallExact(t *testing.T) {
	// Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := BinomialPMF(int64(k), 4, 0.5); !approxEq(got, w, 1e-12) {
			t.Errorf("pmf(%d;4,0.5) = %v, want %v", k, got, w)
		}
	}
}

func TestBinomialCDFAgainstSummation(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{{1, 0.2}, {17, 0.33}, {100, 0.05}, {400, 0.7}, {2500, 0.0375}}
	for _, c := range cases {
		cum := 0.0
		for k := int64(0); k <= c.n; k++ {
			cum += BinomialPMF(k, c.n, c.p)
			got := BinomialCDF(k, c.n, c.p)
			if !approxEq(got, math.Min(cum, 1), 1e-8) {
				t.Fatalf("CDF(%d;%d,%v) = %v, want %v", k, c.n, c.p, got, cum)
			}
		}
	}
}

func TestBinomialSFTwoImplementationsAgree(t *testing.T) {
	if err := quick.Check(func(rn uint16, rx uint16, rp uint16) bool {
		n := int64(rn%1500) + 1
		x := int64(rx) % (n + 1)
		p := (float64(rp%999) + 0.5) / 1000
		a := BinomialSF(x-1, n, p) // Pr(B >= x)
		b := BinomialSFSummed(x, n, p)
		return approxEq(a, b, 1e-7) || (a < 1e-12 && b < 1e-12)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomialCDFSFComplement(t *testing.T) {
	if err := quick.Check(func(rn, rk, rp uint16) bool {
		n := int64(rn%2000) + 1
		k := int64(rk) % (n + 1)
		p := (float64(rp%999) + 0.5) / 1000
		s := BinomialCDF(k, n, p) + BinomialSF(k, n, p)
		return approxEq(s, 1, 1e-9)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomialDegenerateP(t *testing.T) {
	if got := BinomialCDF(3, 10, 0); got != 1 {
		t.Errorf("CDF with p=0 = %v, want 1", got)
	}
	if got := BinomialSF(3, 10, 0); got != 0 {
		t.Errorf("SF with p=0 = %v, want 0", got)
	}
	if got := BinomialCDF(3, 10, 1); got != 0 {
		t.Errorf("CDF(k<n) with p=1 = %v, want 0", got)
	}
	if got := BinomialSF(3, 10, 1); got != 1 {
		t.Errorf("SF(k<n) with p=1 = %v, want 1", got)
	}
	if got := BinomialCDF(10, 10, 1); got != 1 {
		t.Errorf("CDF(k=n) with p=1 = %v, want 1", got)
	}
}

func TestExactBinomialTestAccelerationDetects(t *testing.T) {
	// A pool with 6.76% hash rate mining 412 of 720 c-blocks (ViaBTC row of
	// Table 2) must be overwhelmingly significant.
	res, err := ExactBinomialTest(412, 720, 0.0676, Greater)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-100 {
		t.Errorf("acceleration p = %v, want effectively 0", res.P)
	}
	if !res.Significant {
		t.Error("test not flagged significant")
	}
	// The matching deceleration test must be ~1.
	dec, err := ExactBinomialTest(412, 720, 0.0676, Less)
	if err != nil {
		t.Fatal(err)
	}
	if dec.P < 0.999999 {
		t.Errorf("deceleration p = %v, want ~1", dec.P)
	}
}

func TestExactBinomialTestNullNotRejected(t *testing.T) {
	// x close to yθ0: should not be significant. Poolin row of Table 3:
	// x=10, y=53, θ0=0.1528 → p_accel ≈ 0.2856.
	res, err := ExactBinomialTest(10, 53, 0.1528, Greater)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-0.2856) > 0.02 {
		t.Errorf("Table 3 Poolin acceleration p = %v, paper reports 0.2856", res.P)
	}
	if res.Significant {
		t.Error("null case flagged significant")
	}
	dec, err := ExactBinomialTest(10, 53, 0.1528, Less)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.P-0.8227) > 0.02 {
		t.Errorf("Table 3 Poolin deceleration p = %v, paper reports 0.8227", dec.P)
	}
}

func TestExactBinomialTestTable3Rows(t *testing.T) {
	// Remaining rows of the paper's Table 3: exact reproduction of the
	// published p-values from published (x, y, θ0).
	rows := []struct {
		name       string
		theta      float64
		x          int64
		accel, dec float64
	}{
		{"F2Pool", 0.1450, 10, 0.2323, 0.8629},
		{"BTC.com", 0.1147, 9, 0.1483, 0.9233},
		{"AntPool", 0.1093, 4, 0.8450, 0.2989},
		{"Huobi", 0.0955, 1, 0.9951, 0.0323},
		{"Okex", 0.0698, 3, 0.7248, 0.4890},
		{"1THash&58COIN", 0.0684, 8, 0.0268, 0.9907},
		{"BinancePool", 0.0590, 3, 0.6120, 0.6180},
		{"ViaBTC", 0.0552, 1, 0.9507, 0.2020},
	}
	for _, r := range rows {
		acc, err := ExactBinomialTest(r.x, 53, r.theta, Greater)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(acc.P-r.accel) > 0.005 {
			t.Errorf("%s accel p = %.4f, paper reports %.4f", r.name, acc.P, r.accel)
		}
		dec, err := ExactBinomialTest(r.x, 53, r.theta, Less)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dec.P-r.dec) > 0.005 {
			t.Errorf("%s decel p = %.4f, paper reports %.4f", r.name, dec.P, r.dec)
		}
	}
}

func TestExactBinomialTestValidation(t *testing.T) {
	for _, c := range []struct {
		x, y  int64
		theta float64
	}{{-1, 5, 0.5}, {6, 5, 0.5}, {2, -1, 0.5}, {2, 5, -0.1}, {2, 5, 1.5}, {2, 5, math.NaN()}} {
		if _, err := ExactBinomialTest(c.x, c.y, c.theta, Greater); !errors.Is(err, ErrInvalidTest) {
			t.Errorf("ExactBinomialTest(%d,%d,%v) error = %v, want ErrInvalidTest", c.x, c.y, c.theta, err)
		}
	}
}

func TestNormalApproxMatchesExactForLargeY(t *testing.T) {
	// §5.1.3: for large y with θ0 away from 0/1 the normal approximation
	// should track the exact tail closely.
	for _, c := range []struct {
		x, y  int64
		theta float64
	}{
		{520, 5000, 0.1},
		{480, 5000, 0.1},
		{12000, 100000, 0.12},
	} {
		exact := BinomialSF(c.x-1, c.y, c.theta)
		approx := NormalApproxP(c.x, c.y, c.theta, Greater)
		if exact > 1e-8 && math.Abs(math.Log(exact)-math.Log(approx)) > 0.25 {
			t.Errorf("x=%d y=%d: exact %v vs approx %v", c.x, c.y, exact, approx)
		}
	}
}

func TestAlternativeString(t *testing.T) {
	if Greater.String() != "greater" || Less.String() != "less" {
		t.Error("Alternative.String mismatch")
	}
	if Alternative(9).String() == "" {
		t.Error("unknown alternative rendered empty")
	}
}

func TestFisherCombined(t *testing.T) {
	// Uniform p-values should combine to something unexceptional.
	stat, p, err := FisherCombined([]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wantStat := -2 * 4 * math.Log(0.5)
	if !approxEq(stat, wantStat, 1e-12) {
		t.Errorf("statistic = %v, want %v", stat, wantStat)
	}
	if p < 0.3 || p > 0.9 {
		t.Errorf("combined p of uniform 0.5s = %v, want moderate", p)
	}
	// A batch of small p-values must combine to a very small p.
	_, p, err = FisherCombined([]float64{0.01, 0.02, 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-3 {
		t.Errorf("combined p = %v, want < 1e-3", p)
	}
	// Zero p-values must not NaN.
	_, p, err = FisherCombined([]float64{0, 0.5})
	if err != nil || math.IsNaN(p) {
		t.Errorf("zero p-value handling: p=%v err=%v", p, err)
	}
}

func TestFisherCombinedBoundaries(t *testing.T) {
	// p = 0 clamps to the smallest positive double, 2^-1074, so its
	// contribution is -2·ln(2^-1074) = 2148·ln 2 exactly — large, finite,
	// and platform-independent.
	wantZero := 2148 * math.Ln2
	stat, p, err := FisherCombined([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(stat, 0) || math.IsNaN(stat) {
		t.Fatalf("p=0 statistic = %v, want finite", stat)
	}
	if !approxEq(stat, wantZero, 1e-9) {
		t.Errorf("p=0 statistic = %v, want %v (2148·ln 2)", stat, wantZero)
	}
	if math.IsNaN(p) || p < 0 || p > 1e-300 {
		t.Errorf("p=0 combined p = %v, want tiny and well-formed", p)
	}

	// A subnormal p-value keeps its full exponent: 5e-324 is the clamp
	// value itself, so it must contribute exactly the clamped amount, not
	// the truncated ln(2^-1023) that math.Log yields for subnormals on
	// some platforms.
	stat, _, err = FisherCombined([]float64{5e-324})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(stat, wantZero, 1e-9) {
		t.Errorf("subnormal statistic = %v, want %v", stat, wantZero)
	}

	// p = 1 contributes nothing: ln 1 = 0, and chi2 SF(0, 4 dof) = 1.
	stat, p, err = FisherCombined([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 {
		t.Errorf("p=1 statistic = %v, want 0", stat)
	}
	if !approxEq(p, 1, 1e-12) {
		t.Errorf("all-ones combined p = %v, want 1", p)
	}

	// Mixing a zero with moderate evidence stays finite and ordered: the
	// zero must dominate, not poison.
	statZ, pZ, err := FisherCombined([]float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(statZ, 0) || math.IsNaN(pZ) {
		t.Fatalf("mixed zero: stat=%v p=%v", statZ, pZ)
	}
	if statZ <= wantZero {
		t.Errorf("mixed statistic %v should exceed the lone-zero statistic %v", statZ, wantZero)
	}
}

func TestFisherCombinedErrors(t *testing.T) {
	if _, _, err := FisherCombined(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := FisherCombined([]float64{1.5}); err == nil {
		t.Error("p>1 accepted")
	}
	if _, _, err := FisherCombined([]float64{math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestFisherCombinedMatchesSingle(t *testing.T) {
	// With one p-value, Fisher's method should return approximately that
	// p-value (chi2 with 2 dof: SF(-2 ln p) = p exactly).
	for _, pv := range []float64{0.001, 0.05, 0.5, 0.9} {
		_, p, err := FisherCombined([]float64{pv})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(p, pv, 1e-9) {
			t.Errorf("FisherCombined([%v]) = %v", pv, p)
		}
	}
}
