package observer

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/p2p"
)

// NodeSource subscribes to a p2p node's accepted blocks through its block
// hook and turns each into an Event carrying the block plus a mempool
// snapshot of the seen-log delta since the previous block — the
// first-contact times the node learned while that block was forming.
//
// The hook runs on the node's accepting goroutine, so events pass through a
// bounded queue; if the observer falls more than the queue depth behind, the
// source fails loudly (ErrOverrun) instead of silently losing blocks —
// a lossy observer would quietly skew the audit it feeds.
type NodeSource struct {
	node *p2p.Node
	ch   chan Event
	done chan struct{}

	mu      sync.Mutex
	cursor  int // seen-log position already shipped
	overrun bool
	closed  bool
}

// ErrOverrun reports that the node outran the observer's queue.
var ErrOverrun = fmt.Errorf("observer: node outran the event queue")

// NewNodeSource hooks the source into node. depth bounds the event queue
// (default 1024). Call Close when done; the node must outlive the source.
func NewNodeSource(node *p2p.Node, depth int) *NodeSource {
	if depth <= 0 {
		depth = 1024
	}
	s := &NodeSource{
		node: node,
		ch:   make(chan Event, depth),
		done: make(chan struct{}),
	}
	node.SetBlockHook(s.onBlock)
	return s
}

// onBlock runs on the node's accepting goroutine, outside the node lock.
func (s *NodeSource) onBlock(blk *chain.Block) {
	s.mu.Lock()
	if s.closed || s.overrun {
		s.mu.Unlock()
		return
	}
	seen, cursor := s.node.SeenLogSince(s.cursor)
	s.cursor = cursor
	ev := Event{
		Block: blk,
		Snapshot: &Snapshot{
			Time:      blk.Time,
			TipHeight: blk.Height,
			Seen:      seen,
		},
	}
	select {
	case s.ch <- ev:
		s.mu.Unlock()
	default:
		s.overrun = true
		s.mu.Unlock()
		mDropped.Inc()
	}
}

// Next returns the next queued event; after Close drains the queue it
// returns io.EOF. An overrun surfaces as ErrOverrun once the queue empties.
func (s *NodeSource) Next(ctx context.Context) (Event, error) {
	for {
		mBacklog.Set(float64(len(s.ch)))
		select {
		case ev := <-s.ch:
			return ev, nil
		default:
		}
		s.mu.Lock()
		overrun, closed := s.overrun, s.closed
		s.mu.Unlock()
		if overrun {
			return Event{}, ErrOverrun
		}
		if closed {
			return Event{}, io.EOF
		}
		select {
		case ev := <-s.ch:
			return ev, nil
		case <-s.done:
			// Loop: drain whatever the hook enqueued before Close detached it.
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
}

// Close detaches the hook from the node. Queued events remain readable;
// Next returns io.EOF once they are drained.
func (s *NodeSource) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.node.SetBlockHook(nil)
	close(s.done)
}

// LagSource wraps a Source, shifting every snapshot's observation times
// forward by a fixed Lag — a deterministic model of a poorly-connected
// vantage point that hears about everything late. The shift is data-level
// (the arrival times themselves move), so a lagged source feeding a shared
// set leaves the merged min-time view untouched whenever an unlagged source
// reports the same transactions (min(t, t+lag) = t), while its own
// per-source ledger entries lag by exactly Lag — the planted ground truth
// the divergence audit must flag.
type LagSource struct {
	Src Source
	Lag time.Duration
}

// Next returns the wrapped source's next event with snapshot times shifted.
func (s *LagSource) Next(ctx context.Context) (Event, error) {
	ev, err := s.Src.Next(ctx)
	if err != nil || ev.Snapshot == nil || s.Lag == 0 {
		return ev, err
	}
	sn := *ev.Snapshot
	sn.Time = sn.Time.Add(s.Lag)
	sn.Seen = append([]p2p.SeenEvent(nil), sn.Seen...)
	for i := range sn.Seen {
		if !sn.Seen[i].At.IsZero() {
			sn.Seen[i].At = sn.Seen[i].At.Add(s.Lag)
		}
	}
	ev.Snapshot = &sn
	return ev, nil
}

// ChainSource replays a built chain as an observation stream: one event per
// block, each carrying a snapshot of the body transactions' own times as
// first-contact observations — the same shape streamfeed record emits and
// the deterministic stand-in NodeSource's live feed is audited against.
type ChainSource struct {
	blocks []*chain.Block
	i      int
}

// NewChainSource replays c's blocks in order.
func NewChainSource(c *chain.Chain) *ChainSource {
	return &ChainSource{blocks: c.Blocks()}
}

// Next returns the next block event, or io.EOF past the end.
func (s *ChainSource) Next(ctx context.Context) (Event, error) {
	if err := ctx.Err(); err != nil {
		return Event{}, err
	}
	if s.i >= len(s.blocks) {
		return Event{}, io.EOF
	}
	b := s.blocks[s.i]
	s.i++
	sn := &Snapshot{Time: b.Time, TipHeight: b.Height}
	for _, tx := range b.Body() {
		sn.Seen = append(sn.Seen, p2p.SeenEvent{TxID: tx.ID, At: tx.Time, Tip: b.Height})
	}
	return Event{Block: b, Snapshot: sn}, nil
}
