package observer_test

// Observer tests pin the live-feed contract from three sides: a
// deterministic ChainSource driven into an in-process IndexSink must land
// on the batch auditor's bytes; the HTTP sink must ship, retry, and stay
// idempotent under duplicate delivery; and a real p2p node's block hook
// must surface gossip as ordered events with the seen-log delta attached.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/faults"
	"chainaudit/internal/index"
	"chainaudit/internal/observer"
	"chainaudit/internal/p2p"
	"chainaudit/internal/serve"
)

var baseTime = time.Unix(1_600_000_000, 0)

func buildA(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Cached(dataset.BuilderA, dataset.Options{Seed: 11, Duration: 4 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mkTx(fee chain.Amount, vsize int64, nonce uint16) *chain.Tx {
	tx := &chain.Tx{
		VSize: vsize,
		Fee:   fee,
		Time:  baseTime,
		Inputs: []chain.TxIn{{
			PrevOut: chain.OutPoint{TxID: chain.TxID{byte(nonce), byte(nonce >> 8), 0xDD}},
			Address: "sender",
			Value:   chain.BTC + fee,
		}},
		Outputs: []chain.TxOut{{Address: "receiver", Value: chain.BTC}},
	}
	tx.ComputeID()
	return tx
}

func mkBlock(height int64, txs ...*chain.Tx) *chain.Block {
	var fees chain.Amount
	for _, tx := range txs {
		fees += tx.Fee
	}
	cb := &chain.Tx{
		VSize:       120,
		Time:        baseTime,
		Outputs:     []chain.TxOut{{Address: "pool", Value: chain.Subsidy(height) + fees}},
		CoinbaseTag: "/Pool/",
	}
	cb.ComputeID()
	b := &chain.Block{Height: height, Time: baseTime, Txs: append([]*chain.Tx{cb}, txs...)}
	b.ComputeHash([32]byte{})
	return b
}

// memSink collects applied batches by value, so later reuse of the run's
// staging batch cannot alias them.
type memSink struct{ batches []observer.Batch }

func (s *memSink) Apply(_ context.Context, b *observer.Batch) error {
	s.batches = append(s.batches, observer.Batch{Blocks: b.Blocks, Snapshots: b.Snapshots})
	return nil
}

// TestChainSourceIndexSinkMatchesBatch replays a built chain through the
// observer pipeline into an in-process index and checks the windowed audits
// land byte-identical to the batch auditor over the same suffix — the
// observer adds transport, never verdict drift.
func TestChainSourceIndexSinkMatchesBatch(t *testing.T) {
	ds := buildA(t)
	c, reg := ds.Result.Chain, ds.Registry
	ix := index.NewIncremental(reg)
	win := core.NewWindowAuditor(0)

	stats, err := observer.Run(context.Background(),
		observer.NewChainSource(c), &observer.IndexSink{Index: ix, Win: win},
		observer.Config{BatchBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != c.Len() || stats.Snapshots != c.Len() {
		t.Fatalf("stats %d blocks %d snapshots, want %d of each", stats.Blocks, stats.Snapshots, c.Len())
	}
	wantBatches := (c.Len() + 7) / 8
	if stats.Batches != wantBatches || len(stats.Ship) != wantBatches {
		t.Fatalf("batches %d (ship %d), want %d", stats.Batches, len(stats.Ship), wantBatches)
	}

	render := func(f func(io.Writer) error) string {
		var b bytes.Buffer
		if err := f(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	for _, n := range []int{1, 7, 16} {
		batch := &core.Auditor{Chain: c.Suffix(n), Registry: reg}
		want := render(func(w io.Writer) error { return core.WritePPESection(w, batch.AuditPPE(core.AuditOptions{})) })
		got := render(func(w io.Writer) error { return core.WritePPESection(w, win.AuditPPE(n, core.AuditOptions{})) })
		if got != want {
			t.Errorf("window %d: PPE diverged from batch suffix", n)
		}
	}

	// The per-block snapshots carried the body transactions' own times.
	last := c.Blocks()[c.Len()-1]
	for _, tx := range last.Body() {
		got, ok := ix.FirstSeen(tx.ID)
		if !ok || !got.Equal(tx.Time) {
			t.Fatalf("first-seen for tx %s = %v ok=%v, want %v", tx.ID.Short(), got, ok, tx.Time)
		}
	}
}

// TestRunDropsOutOfOrder pins the feed-side ordering guard: stale or
// duplicate heights are dropped (their snapshots kept) instead of reaching
// a sink that would reject the whole batch for them.
func TestRunDropsOutOfOrder(t *testing.T) {
	b1, b2, b3 := mkBlock(650_000), mkBlock(650_001), mkBlock(650_002)
	events := []observer.Event{
		{Block: b1, Snapshot: &observer.Snapshot{Time: baseTime, TipHeight: b1.Height}},
		{Block: b2},
		{Block: b2, Snapshot: &observer.Snapshot{Time: baseTime.Add(time.Second), TipHeight: b2.Height}}, // gossip redelivery
		{Block: b1}, // stale
		{Block: b3},
	}
	src := &scriptSource{events: events}
	sink := &memSink{}
	stats, err := observer.Run(context.Background(), src, sink, observer.Config{BatchBlocks: 100})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 3 {
		t.Fatalf("blocks %d, want 3 (duplicates dropped)", stats.Blocks)
	}
	if stats.Snapshots != 2 {
		t.Fatalf("snapshots %d, want 2 (kept despite dropped blocks)", stats.Snapshots)
	}
	if len(sink.batches) != 1 {
		t.Fatalf("batches %d, want 1", len(sink.batches))
	}
	got := sink.batches[0]
	if len(got.Blocks) != 3 || got.Blocks[0] != b1 || got.Blocks[1] != b2 || got.Blocks[2] != b3 {
		t.Fatalf("sink saw %d blocks in wrong order", len(got.Blocks))
	}
}

type scriptSource struct {
	events []observer.Event
	i      int
}

func (s *scriptSource) Next(ctx context.Context) (observer.Event, error) {
	if err := ctx.Err(); err != nil {
		return observer.Event{}, err
	}
	if s.i >= len(s.events) {
		return observer.Event{}, io.EOF
	}
	ev := s.events[s.i]
	s.i++
	return ev, nil
}

// serveFixture boots a chainauditd handler backed by a CSV-loaded batch set
// "main" holding the returned chain — the reference the shipped stream is
// compared against.
func serveFixture(t *testing.T) (http.Handler, *chain.Chain) {
	t.Helper()
	ds, err := dataset.Cached(dataset.BuilderC, dataset.Options{Seed: 11, Duration: 4 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chain.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteChainCSV(f, ds.Result.Chain); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c, err := dataset.ReadChainCSV(raw)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	srv, err := serve.New(serve.Config{
		Chains: []serve.ChainSpec{{Name: "main", Path: path}},
		Clock:  func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler(), c
}

func textBody(t *testing.T, h http.Handler, target string) string {
	t.Helper()
	req := httptest.NewRequest("POST", target, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("%s = %d: %s", target, rr.Code, rr.Body.String())
	}
	return rr.Body.String()
}

// TestHTTPSinkRecordAndReplayIdentical is the in-process half of the
// smoke-live gate: ship a chain through RecordSink→HTTPSink into one
// service, replay the recording into a second data set on the same service,
// and require identical audit bytes from both — plus identity with the
// batch-loaded reference.
func TestHTTPSinkRecordAndReplayIdentical(t *testing.T) {
	h, c := serveFixture(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var recording bytes.Buffer
	http1 := &observer.HTTPSink{URL: ts.URL, Dataset: "live"}
	sink := observer.NewRecordSink(&recording, "live", http1)
	stats, err := observer.Run(context.Background(),
		observer.NewChainSource(c), sink, observer.Config{BatchBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != c.Len() {
		t.Fatalf("shipped %d blocks, want %d", stats.Blocks, c.Len())
	}
	if http1.Last.Height == nil || *http1.Last.Height != c.Blocks()[c.Len()-1].Height {
		t.Fatalf("watermark %v, want tip %d", http1.Last.Height, c.Blocks()[c.Len()-1].Height)
	}

	// Replay the recording verbatim into a second streaming set.
	sc := bufio.NewScanner(bytes.NewReader(recording.Bytes()))
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var req serve.IngestRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			t.Fatalf("recorded line does not parse: %v", err)
		}
		req.Dataset = "replayed"
		raw, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay rejected (%d): %s", resp.StatusCode, body)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, target := range []string{
		"/v1/audits/ppe?format=text&dataset=%s",
		"/v1/audits/ppe?format=text&window=16&dataset=%s",
		"/v1/audits/lowfee?format=text&window=16&dataset=%s",
	} {
		live := textBody(t, h, fmt.Sprintf(target, "live"))
		replayed := textBody(t, h, fmt.Sprintf(target, "replayed"))
		main := textBody(t, h, fmt.Sprintf(target, "main"))
		if live != replayed {
			t.Errorf("%s: live and replayed audit bytes differ", target)
		}
		if live != main {
			t.Errorf("%s: live and batch-loaded audit bytes differ", target)
		}
	}
}

// TestHTTPSinkIdempotentAndFatal pins the retry semantics: redelivering an
// applied batch succeeds through the watermark check, while a gapped batch
// is rejected without burning retries.
func TestHTTPSinkIdempotentAndFatal(t *testing.T) {
	h, c := serveFixture(t)
	ts := httptest.NewServer(h)
	defer ts.Close()
	blocks := c.Blocks()
	sink := &observer.HTTPSink{URL: ts.URL, Dataset: "live", Backoff: time.Millisecond}

	batch := &observer.Batch{Blocks: blocks[:4]}
	if err := sink.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	// Redelivery: every block already applied, so the 409 carries a covering
	// watermark and the sink treats it as success.
	if err := sink.Apply(context.Background(), batch); err != nil {
		t.Fatalf("duplicate delivery not idempotent: %v", err)
	}
	// A gap is a semantic rejection the watermark cannot cover: fatal, fast.
	gapped := &observer.Batch{Blocks: blocks[8:10]}
	if err := sink.Apply(context.Background(), gapped); err == nil {
		t.Fatal("gapped batch accepted")
	}
}

// TestHTTPSinkRetriesServerErrors pins transport resilience: 5xx responses
// and injected drops burn retries with backoff, then the batch lands.
func TestHTTPSinkRetriesServerErrors(t *testing.T) {
	h, c := serveFixture(t)
	var failures atomic.Int64
	failures.Store(2)
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	sink := &observer.HTTPSink{URL: ts.URL, Dataset: "live", Backoff: time.Millisecond}
	if err := sink.Apply(context.Background(), &observer.Batch{Blocks: c.Blocks()[:2]}); err != nil {
		t.Fatalf("did not survive transient 503s: %v", err)
	}
	if sink.Last.Appended != 2 {
		t.Fatalf("appended %d, want 2", sink.Last.Appended)
	}

	// A plan that drops every message starves the sink: the retry budget is
	// spent and Apply reports the injected failure.
	plan, err := faults.NewPlan(7, faults.Rates{P2PDrop: 1})
	if err != nil {
		t.Fatal(err)
	}
	dropped := &observer.HTTPSink{URL: ts.URL, Dataset: "live", Backoff: time.Millisecond, MaxRetries: 2, Faults: plan.P2P(1)}
	if err := dropped.Apply(context.Background(), &observer.Batch{Blocks: c.Blocks()[2:3]}); err == nil {
		t.Fatal("fully dropped link reported success")
	}
}

// TestNodeSourceLiveFeed runs the real thing end to end: a miner node
// gossips transactions and blocks to a watcher node over pipes, the
// watcher's block hook feeds a NodeSource, and the observer run surfaces
// the blocks in order with the first-contact delta attached.
func TestNodeSourceLiveFeed(t *testing.T) {
	miner := p2p.NewNode("miner", 1)
	watcher := p2p.NewNode("watcher", 1)
	defer miner.Close()
	defer watcher.Close()
	miner.SetClock(func() time.Time { return baseTime })
	watcher.SetClock(func() time.Time { return baseTime })
	src := observer.NewNodeSource(watcher, 64)
	p2p.ConnectPair(miner, watcher)

	tx1, tx2 := mkTx(5_000, 250, 1), mkTx(7_000, 300, 2)
	if err := miner.SubmitTx(tx1, baseTime); err != nil {
		t.Fatal(err)
	}
	if err := miner.SubmitTx(tx2, baseTime); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "txs at watcher", func() bool { return watcher.Mempool(baseTime).Count == 2 })

	if err := miner.SubmitBlock(mkBlock(650_000, tx1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "block 650000 at watcher", func() bool {
		return watcher.Mempool(baseTime).TipHeight == 650_000
	})
	if err := miner.SubmitBlock(mkBlock(650_001, tx2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "block 650001 at watcher", func() bool {
		return watcher.Mempool(baseTime).TipHeight == 650_001
	})

	src.Close() // queued events stay readable; Run drains to EOF
	sink := &memSink{}
	stats, err := observer.Run(context.Background(), src, sink, observer.Config{BatchBlocks: 100})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 2 {
		t.Fatalf("observed %d blocks, want 2", stats.Blocks)
	}
	if len(sink.batches) != 1 {
		t.Fatalf("batches %d, want 1", len(sink.batches))
	}
	b := sink.batches[0]
	if b.Blocks[0].Height != 650_000 || b.Blocks[1].Height != 650_001 {
		t.Fatalf("heights %d, %d out of order", b.Blocks[0].Height, b.Blocks[1].Height)
	}
	// The first block's snapshot carries the watcher's first contact with
	// both gossiped transactions; the second's delta is empty.
	seen := map[chain.TxID]bool{}
	for _, ev := range b.Snapshots[0].Seen {
		seen[ev.TxID] = true
	}
	if !seen[tx1.ID] || !seen[tx2.ID] {
		t.Fatalf("first snapshot missing gossiped txs (saw %d events)", len(b.Snapshots[0].Seen))
	}
	if len(b.Snapshots[1].Seen) != 0 {
		t.Fatalf("second snapshot delta has %d events, want 0", len(b.Snapshots[1].Seen))
	}
}

// TestNodeSourceOverrun pins the loud-failure contract: when the node
// outruns the queue, the source surfaces ErrOverrun after draining instead
// of silently losing blocks.
func TestNodeSourceOverrun(t *testing.T) {
	node := p2p.NewNode("n", 1)
	defer node.Close()
	node.SetClock(func() time.Time { return baseTime })
	src := observer.NewNodeSource(node, 1)
	defer src.Close()

	for h := int64(650_000); h < 650_003; h++ {
		err := node.SubmitBlock(mkBlock(h))
		if err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if ev, err := src.Next(ctx); err != nil || ev.Block.Height != 650_000 {
		t.Fatalf("first event %v, %v", ev.Block, err)
	}
	if _, err := src.Next(ctx); !errors.Is(err, observer.ErrOverrun) {
		t.Fatalf("drained queue error = %v, want ErrOverrun", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
