package observer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/faults"
	"chainaudit/internal/index"
	"chainaudit/internal/mempool"
	"chainaudit/internal/serve"
)

// IndexSink applies batches to an in-process incremental index and window
// auditor, mirroring serve.handleIngest's apply order exactly (blocks first,
// then snapshots; snapshot counts from the frame; zero first-seen times fall
// back to the snapshot time) so an in-process run and an HTTP run over the
// same event stream land on identical audit state.
type IndexSink struct {
	Index *index.BlockIndex
	Win   *core.WindowAuditor
}

// Apply appends the batch; the first unappendable or out-of-order block
// fails the batch, like the service's 409.
func (s *IndexSink) Apply(ctx context.Context, b *Batch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, blk := range b.Blocks {
		rec, err := s.Index.AppendBlock(blk)
		if err != nil {
			return err
		}
		if s.Win != nil {
			if err := s.Win.ObserveBlock(rec); err != nil {
				return err
			}
		}
	}
	for _, sn := range b.Snapshots {
		seen := make(map[chain.TxID]time.Time, len(sn.Seen))
		for _, ev := range sn.Seen {
			at := ev.At
			if at.IsZero() {
				at = sn.Time
			}
			seen[ev.TxID] = at
		}
		s.Index.ObserveFirstSeen(seen)
		if s.Win != nil {
			s.Win.ObserveSnapshot(&mempool.Snapshot{
				Time:      sn.Time,
				Count:     len(sn.Seen),
				TipHeight: sn.TipHeight,
			})
		}
	}
	return nil
}

// HTTPSink ships batches to a running chainauditd's POST /v1/ingest with
// retry and exponential backoff. Transport failures reconnect and retry;
// semantic rejections (400/409) are permanent — except the idempotent case
// where the service already holds every block in the batch (a duplicate
// delivery after a retry or reconnect), which counts as success.
//
// An optional faults injector rehearses a flaky observer link: dropped
// attempts become transport failures, delays hold the request back, and
// duplicates ship the batch twice (the second delivery exercising the
// idempotent path).
type HTTPSink struct {
	URL     string // chainauditd base URL
	Dataset string
	Client  *http.Client
	// MaxRetries bounds retry attempts after the first (default 4).
	MaxRetries int
	// Backoff is the initial retry delay (default 100ms), doubling per
	// attempt and capped at 2s.
	Backoff time.Duration
	Faults  *faults.P2PInjector

	// Last is the most recent accepted ingest response, for driver reports.
	Last serve.IngestResponse
}

func (s *HTTPSink) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *HTTPSink) retries() int {
	if s.MaxRetries > 0 {
		return s.MaxRetries
	}
	return 4
}

func (s *HTTPSink) backoff(attempt int) time.Duration {
	d := s.Backoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= 2*time.Second {
			return 2 * time.Second
		}
	}
	return d
}

// Apply ships one batch, retrying transport failures until the retry budget
// is spent.
func (s *HTTPSink) Apply(ctx context.Context, b *Batch) error {
	req := b.Request(s.Dataset)
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	endpoint := strings.TrimSuffix(s.URL, "/") + "/v1/ingest"
	var lastErr error
	for attempt := 0; attempt <= s.retries(); attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			select {
			case <-time.After(s.backoff(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		act := s.Faults.Message()
		if act.Delay > 0 {
			select {
			case <-time.After(act.Delay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if act.Drop {
			// The link ate the request: indistinguishable from a transport
			// failure on our side, so it burns a retry and a reconnect.
			mReconnects.Inc()
			lastErr = fmt.Errorf("observer: injected drop shipping batch at height %d", b.maxHeight())
			continue
		}
		resp, err := s.post(ctx, endpoint, body, b)
		if err != nil {
			var fatal *fatalIngestError
			if errors.As(err, &fatal) {
				return fatal.err
			}
			mReconnects.Inc()
			lastErr = err
			continue
		}
		s.Last = *resp
		if act.Duplicate {
			// Deliver again; the service already holds these blocks, so the
			// duplicate must come back idempotent-accepted or the stream
			// protocol regressed.
			if _, err := s.post(ctx, endpoint, body, b); err != nil {
				return fmt.Errorf("observer: duplicate delivery not idempotent: %w", err)
			}
		}
		return nil
	}
	return fmt.Errorf("observer: batch at height %d failed after %d attempts: %w", b.maxHeight(), s.retries()+1, lastErr)
}

// fatalIngestError marks a semantic rejection that retrying cannot fix.
type fatalIngestError struct{ err error }

func (e *fatalIngestError) Error() string { return e.err.Error() }
func (e *fatalIngestError) Unwrap() error { return e.err }

// post sends one delivery and interprets the service's verdict. A non-OK
// status whose response watermark already covers the batch is the
// idempotent duplicate-delivery case and succeeds.
func (s *HTTPSink) post(ctx context.Context, endpoint string, body []byte, b *Batch) (*serve.IngestResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, &fatalIngestError{err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := s.client().Do(hreq)
	if err != nil {
		return nil, err // transport: retryable
	}
	defer hresp.Body.Close()
	var resp serve.IngestResponse
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("observer: bad ingest response (%d): %s", hresp.StatusCode, raw)
	}
	if hresp.StatusCode == http.StatusOK {
		return &resp, nil
	}
	if resp.Height != nil && *resp.Height >= b.maxHeight() && b.maxHeight() >= 0 {
		return &resp, nil // already applied: duplicate delivery, not a failure
	}
	if hresp.StatusCode >= 500 {
		return nil, fmt.Errorf("observer: ingest unavailable (%d)", hresp.StatusCode) // server trouble: retryable
	}
	return nil, &fatalIngestError{fmt.Errorf("observer: ingest rejected (%d): %s", hresp.StatusCode, resp.Error)}
}

// RecordSink tees every batch's ingest request to a JSONL stream — the
// exact format streamfeed replay consumes — before forwarding it to the
// next sink. Recording a live run and replaying the recording must produce
// identical audit state; smoke-live holds the repo to that.
type RecordSink struct {
	enc     *json.Encoder
	next    Sink
	dataset string
}

// NewRecordSink tees requests for dataset onto w, then forwards to next.
func NewRecordSink(w io.Writer, dataset string, next Sink) *RecordSink {
	return &RecordSink{enc: json.NewEncoder(w), next: next, dataset: dataset}
}

// Apply writes the batch's request line, then forwards the batch.
func (s *RecordSink) Apply(ctx context.Context, b *Batch) error {
	req := b.Request(s.dataset)
	if err := s.enc.Encode(&req); err != nil {
		return err
	}
	return s.next.Apply(ctx, b)
}
