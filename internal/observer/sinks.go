package observer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/faults"
	"chainaudit/internal/index"
	"chainaudit/internal/mempool"
	"chainaudit/internal/serve"
	"chainaudit/internal/stats"
)

// IndexSink applies batches to an in-process incremental index and window
// auditor, mirroring serve.handleIngest's apply order exactly (blocks first,
// then snapshots; snapshot counts from the frame; zero first-seen times fall
// back to the snapshot time) so an in-process run and an HTTP run over the
// same event stream land on identical audit state.
type IndexSink struct {
	Index *index.BlockIndex
	Win   *core.WindowAuditor
	// Source attributes this sink's snapshot observations to a named
	// vantage point in the index's per-source ledger; empty merges
	// anonymously (the single-observer behavior).
	Source string
}

// Apply appends the batch; the first unappendable or out-of-order block
// fails the batch, like the service's 409.
func (s *IndexSink) Apply(ctx context.Context, b *Batch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, blk := range b.Blocks {
		rec, err := s.Index.AppendBlock(blk)
		if err != nil {
			return err
		}
		if s.Win != nil {
			if err := s.Win.ObserveBlock(rec); err != nil {
				return err
			}
		}
	}
	for _, sn := range b.Snapshots {
		seen := make(map[chain.TxID]time.Time, len(sn.Seen))
		for _, ev := range sn.Seen {
			at := ev.At
			if at.IsZero() {
				at = sn.Time
			}
			seen[ev.TxID] = at
		}
		s.Index.ObserveFirstSeenFrom(s.Source, seen)
		if s.Win != nil {
			s.Win.ObserveSnapshot(&mempool.Snapshot{
				Time:      sn.Time,
				Count:     len(sn.Seen),
				TipHeight: sn.TipHeight,
			})
		}
	}
	return nil
}

// HTTPSink ships batches to a running chainauditd's POST /v1/ingest with
// retry and jittered exponential backoff. Transport failures reconnect and
// retry; semantic rejections (400/409) are permanent — except when the
// response watermark shows the service already holds some or all of the
// batch's blocks (a duplicate delivery after a retry, reconnect, or server
// restart). Covered blocks are trimmed and the remainder — always including
// the batch's mempool snapshot frames, which a rejecting delivery skips —
// is re-sent, so a duplicate block delivery never loses snapshots.
//
// After a chainauditd restart, SyncWatermark primes the sink with the
// service's recovered ingest height so fully covered batches are skipped
// without a round trip.
//
// An optional faults injector rehearses a flaky observer link: dropped
// attempts become transport failures, delays hold the request back, and
// duplicates ship the batch twice (the second delivery exercising the
// covered-trim path).
type HTTPSink struct {
	URL     string // chainauditd base URL
	Dataset string
	// Source attributes every shipped snapshot frame to a named vantage
	// point. A non-empty Source ships through POST /v2/ingest with the
	// request-level source field set; empty ships through POST /v1/ingest,
	// byte-identical to the pre-attribution sink.
	Source string
	// Client overrides the HTTP client; nil uses a private client with a
	// 30s timeout (never http.DefaultClient, which hangs forever on a
	// wedged server).
	Client *http.Client
	// MaxRetries bounds retry attempts after the first (default 4).
	MaxRetries int
	// Backoff is the initial retry delay (default 100ms), doubling per
	// attempt and capped at 2s. Each wait is equal-jittered: half fixed,
	// half drawn from a deterministic seeded stream, so herds of observers
	// hammering a restarted server desynchronize reproducibly.
	Backoff time.Duration
	// Seed seeds the backoff jitter stream (default 1). Same seed, same
	// jitter sequence — retry timing stays replayable under test.
	Seed   uint64
	Faults *faults.P2PInjector

	// Last is the most recent accepted ingest response, for driver reports.
	Last serve.IngestResponse

	// covered is the highest block height the service has durably
	// acknowledged (from SyncWatermark or response watermarks); blocks at or
	// below it are already applied server-side.
	covered   int64
	coveredOK bool
	fallback  *http.Client
	jitter    *stats.RNG
}

func (s *HTTPSink) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	if s.fallback == nil {
		s.fallback = &http.Client{Timeout: 30 * time.Second}
	}
	return s.fallback
}

func (s *HTTPSink) retries() int {
	if s.MaxRetries > 0 {
		return s.MaxRetries
	}
	return 4
}

func (s *HTTPSink) backoff(attempt int) time.Duration {
	d := s.Backoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= 2*time.Second {
			d = 2 * time.Second
			break
		}
	}
	if s.jitter == nil {
		seed := s.Seed
		if seed == 0 {
			seed = 1
		}
		s.jitter = stats.NewRNG(seed)
	}
	half := d / 2
	return half + time.Duration(s.jitter.Float64()*float64(half))
}

// SyncWatermark asks the service (GET /v1/healthz) for the dataset's
// current ingest watermark — after a chainauditd restart, the height its WAL
// recovery reached — and primes the sink to skip batches the service already
// holds. It reports the height and whether the dataset exposed one; a
// missing dataset or watermark is not an error (the sink just resumes
// without a skip horizon).
func (s *HTTPSink) SyncWatermark(ctx context.Context) (int64, bool, error) {
	endpoint := strings.TrimSuffix(s.URL, "/") + "/v1/healthz"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint, nil)
	if err != nil {
		return 0, false, err
	}
	hresp, err := s.client().Do(hreq)
	if err != nil {
		return 0, false, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("observer: healthz returned %d", hresp.StatusCode)
	}
	var resp struct {
		Datasets []struct {
			Name      string `json:"name"`
			Watermark *struct {
				Height int64 `json:"height"`
			} `json:"watermark"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return 0, false, err
	}
	for _, d := range resp.Datasets {
		if d.Name == s.Dataset && d.Watermark != nil {
			s.extendCovered(d.Watermark.Height)
			return d.Watermark.Height, true, nil
		}
	}
	return 0, false, nil
}

// extendCovered ratchets the durable watermark forward.
func (s *HTTPSink) extendCovered(h int64) {
	if !s.coveredOK || h > s.covered {
		s.covered, s.coveredOK = h, true
	}
}

// Apply ships one batch, retrying transport failures until the retry budget
// is spent and trimming blocks the service already holds.
func (s *HTTPSink) Apply(ctx context.Context, b *Batch) error {
	if h := b.maxHeight(); h >= 0 && s.coveredOK && h <= s.covered {
		// Ingest applied the whole request — snapshots included — before
		// acknowledging, so a batch below the synced watermark is durable
		// server-side in full and needs no delivery at all.
		mSkipped.Inc()
		return nil
	}
	req := b.Request(s.Dataset)
	version := "/v1/ingest"
	if s.Source != "" {
		req.Source = s.Source
		version = "/v2/ingest"
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	endpoint := strings.TrimSuffix(s.URL, "/") + version
	var lastErr error
	for attempt := 0; attempt <= s.retries(); attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			select {
			case <-time.After(s.backoff(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		act := s.Faults.Message()
		if act.Delay > 0 {
			select {
			case <-time.After(act.Delay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if act.Drop {
			// The link ate the request: indistinguishable from a transport
			// failure on our side, so it burns a retry and a reconnect.
			mReconnects.Inc()
			lastErr = fmt.Errorf("observer: injected drop shipping batch at height %d", b.maxHeight())
			continue
		}
		resp, err := s.post(ctx, endpoint, body, &req)
		if err != nil {
			var cov *coveredError
			if errors.As(err, &cov) {
				// The service already holds a prefix (or all) of the blocks
				// but skipped the request's snapshot frames when it rejected.
				// Trim the covered blocks and re-send the remainder so the
				// snapshots still land; the re-send does not burn a retry
				// (trims are bounded by the block count).
				s.extendCovered(cov.height)
				trimBlocks(&req, cov.height)
				if len(req.Blocks) == 0 && len(req.Mempool) == 0 {
					s.Last = *cov.resp
					return nil // nothing left to deliver: covered in full
				}
				if body, err = json.Marshal(&req); err != nil {
					return err
				}
				mResends.Inc()
				attempt--
				continue
			}
			var fatal *fatalIngestError
			if errors.As(err, &fatal) {
				return fatal.err
			}
			mReconnects.Inc()
			lastErr = err
			continue
		}
		s.Last = *resp
		if resp.Height != nil {
			s.extendCovered(*resp.Height)
		}
		if act.Duplicate {
			// Deliver again; the service already holds these blocks, so the
			// duplicate must come back idempotent-accepted — either an OK or
			// a covered rejection — or the stream protocol regressed.
			if _, err := s.post(ctx, endpoint, body, &req); err != nil {
				var cov *coveredError
				if !errors.As(err, &cov) {
					return fmt.Errorf("observer: duplicate delivery not idempotent: %w", err)
				}
			}
		}
		return nil
	}
	return fmt.Errorf("observer: batch at height %d failed after %d attempts: %w", b.maxHeight(), s.retries()+1, lastErr)
}

// trimBlocks drops every block frame at or below the covered height.
func trimBlocks(req *serve.IngestRequest, covered int64) {
	kept := req.Blocks[:0]
	for _, bf := range req.Blocks {
		if bf.Height > covered {
			kept = append(kept, bf)
		}
	}
	req.Blocks = kept
}

// sentHeights reports the lowest and highest block heights in the request,
// or ok=false for a snapshot-only request.
func sentHeights(req *serve.IngestRequest) (lo, hi int64, ok bool) {
	for i, bf := range req.Blocks {
		if i == 0 || bf.Height < lo {
			lo = bf.Height
		}
		if i == 0 || bf.Height > hi {
			hi = bf.Height
		}
	}
	return lo, hi, len(req.Blocks) > 0
}

// fatalIngestError marks a semantic rejection that retrying cannot fix.
type fatalIngestError struct{ err error }

func (e *fatalIngestError) Error() string { return e.err.Error() }
func (e *fatalIngestError) Unwrap() error { return e.err }

// coveredError reports a rejected delivery whose response watermark shows
// the service already holds the request's leading blocks — duplicate
// delivery, not data loss. The caller trims and re-sends the rest.
type coveredError struct {
	height int64
	resp   *serve.IngestResponse
}

func (e *coveredError) Error() string {
	return fmt.Sprintf("observer: service already holds blocks through height %d", e.height)
}

// post sends one delivery and interprets the service's verdict: OK is
// applied, a rejection whose watermark covers at least the first sent block
// is a coveredError (duplicate delivery — trim and re-send), 5xx is
// retryable, and anything else is fatal.
func (s *HTTPSink) post(ctx context.Context, endpoint string, body []byte, req *serve.IngestRequest) (*serve.IngestResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, &fatalIngestError{err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := s.client().Do(hreq)
	if err != nil {
		return nil, err // transport: retryable
	}
	defer hresp.Body.Close()
	var resp serve.IngestResponse
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("observer: bad ingest response (%d): %s", hresp.StatusCode, raw)
	}
	if hresp.StatusCode == http.StatusOK {
		return &resp, nil
	}
	if lo, _, ok := sentHeights(req); ok && resp.Height != nil && *resp.Height >= lo {
		return nil, &coveredError{height: *resp.Height, resp: &resp}
	}
	if hresp.StatusCode >= 500 {
		return nil, fmt.Errorf("observer: ingest unavailable (%d)", hresp.StatusCode) // server trouble: retryable
	}
	return nil, &fatalIngestError{fmt.Errorf("observer: ingest rejected (%d): %s", hresp.StatusCode, resp.Error)}
}

// RecordSink tees every batch's ingest request to a JSONL stream — the
// exact format streamfeed replay consumes — before forwarding it to the
// next sink. Recording a live run and replaying the recording must produce
// identical audit state; smoke-live holds the repo to that.
type RecordSink struct {
	enc     *json.Encoder
	next    Sink
	dataset string
	// Source, when set, stamps each recorded request with a source
	// attribution (the v2 wire field); replaying such a recording needs the
	// v2 endpoint. Empty keeps recordings v1-byte-identical.
	Source string
}

// NewRecordSink tees requests for dataset onto w, then forwards to next.
func NewRecordSink(w io.Writer, dataset string, next Sink) *RecordSink {
	return &RecordSink{enc: json.NewEncoder(w), next: next, dataset: dataset}
}

// Apply writes the batch's request line, then forwards the batch.
func (s *RecordSink) Apply(ctx context.Context, b *Batch) error {
	req := b.Request(s.dataset)
	req.Source = s.Source
	if err := s.enc.Encode(&req); err != nil {
		return err
	}
	return s.next.Apply(ctx, b)
}
