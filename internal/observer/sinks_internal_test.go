package observer

// White-box HTTPSink tests for the client and backoff knobs: the default
// client must carry a timeout (a wedged server must not hang the feed
// forever), and backoff jitter must be deterministic in the seed.

import (
	"net/http"
	"testing"
	"time"
)

func TestHTTPSinkDefaultClientTimeout(t *testing.T) {
	s := &HTTPSink{}
	c := s.client()
	if c.Timeout != 30*time.Second {
		t.Errorf("default client timeout = %v, want 30s", c.Timeout)
	}
	if s.client() != c {
		t.Error("default client not reused across calls")
	}
	own := &http.Client{Timeout: time.Minute}
	custom := &HTTPSink{Client: own}
	if custom.client() != own {
		t.Error("explicit client not honored")
	}
}

func TestHTTPSinkBackoffJitterDeterministic(t *testing.T) {
	series := func(seed uint64) []time.Duration {
		s := &HTTPSink{Seed: seed}
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = s.backoff(i)
		}
		return out
	}
	a, b, c := series(7), series(7), series(8)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed gave %v then %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
		// Equal jitter: half the capped exponential base is fixed, the rest
		// drawn from the seeded stream.
		base := 100 * time.Millisecond << i
		if base > 2*time.Second {
			base = 2 * time.Second
		}
		if a[i] < base/2 || a[i] > base {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", i, a[i], base/2, base)
		}
	}
	if !diverged {
		t.Error("different seeds produced identical jitter series")
	}
	// The zero seed still jitters (defaults to a fixed stream).
	z := &HTTPSink{}
	if d := z.backoff(0); d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("zero-seed backoff = %v, want within [50ms, 100ms]", d)
	}
}
