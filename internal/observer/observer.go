// Package observer is the live half of the streaming pipeline (DESIGN.md
// §12): it subscribes to an internal/p2p node's accepted blocks and
// first-contact log, batches them into the same ingest frames cmd/streamfeed
// records, and drives them into an audit index — in-process through an
// IndexSink, or over HTTP through an HTTPSink POSTing to a running
// chainauditd's /v1/ingest.
//
// The package sits between two deterministic layers and stays faithful to
// both: a Source yields blocks in accept order with the mempool seen-log
// delta attached, and a Sink applies exactly the wire semantics
// serve.handleIngest implements (blocks first, then snapshots; first-seen
// fallback to the frame time; snapshot counts from the frame). Because
// Batch.Request produces the identical JSON a streamfeed recording holds, a
// live run teed through a RecordSink replays byte-identically — `make
// smoke-live` pins that end to end.
//
// Unlike the simulator, the observer runs on the wall clock (it fronts a
// live p2p node), so it is exempt from the walltime lint; its determinism
// obligation is the weaker, load-bearing one above: same event sequence in,
// same frames out.
package observer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/obs"
	"chainaudit/internal/p2p"
	"chainaudit/internal/serve"
)

// Observer metrics, exported through the obs registry like every other
// subsystem (GET /v1/metrics when embedded, run manifests otherwise).
var (
	mBlocks     = obs.Default.Counter("observer.blocks")
	mSnapshots  = obs.Default.Counter("observer.snapshots")
	mBatches    = obs.Default.Counter("observer.batches")
	mOutOfOrder = obs.Default.Counter("observer.out_of_order")
	mRetries    = obs.Default.Counter("observer.retries")
	mReconnects = obs.Default.Counter("observer.reconnects")
	mDropped    = obs.Default.Counter("observer.dropped")
	// mResends counts snapshot-preserving re-sends after a covered rejection:
	// the service already held the delivery's leading blocks, so the sink
	// trimmed them and shipped the rest (mempool frames included) again.
	mResends = obs.Default.Counter("observer.resends")
	// mSkipped counts batches skipped entirely because a synced watermark
	// showed the service already holds them (resume after server restart).
	mSkipped = obs.Default.Counter("observer.skipped_covered")
	// mLag is emit-to-ack shipping lag: the time from pulling a batch's first
	// event off the source to the sink acknowledging the batch, in
	// milliseconds. It deliberately measures the observer's own pipeline, not
	// now-minus-block-timestamp (that is serve.ingest.lag_ms, and for replayed
	// or simulated chains block timestamps are in the deep past).
	mLag = obs.Default.Gauge("observer.lag_ms")
	// mBacklog is the depth of the NodeSource's event queue — how far the
	// observer is behind the node it watches.
	mBacklog = obs.Default.Gauge("observer.backlog")
)

// Snapshot is one mempool observation attached to the event stream: the
// first-contact events learned since the previous snapshot, plus the tip the
// observer saw when it looked.
type Snapshot struct {
	Time      time.Time
	TipHeight int64
	Seen      []p2p.SeenEvent
}

// Event is one observation pulled from a Source: an accepted block, a
// mempool snapshot, or both (a block with the seen-log delta that preceded
// it).
type Event struct {
	Block    *chain.Block
	Snapshot *Snapshot
}

// Source yields observation events in order. Next blocks until an event is
// available, the stream ends (io.EOF), or ctx is done.
type Source interface {
	Next(ctx context.Context) (Event, error)
}

// Batch is a run of consecutive events staged for one sink application.
type Batch struct {
	Blocks    []*chain.Block
	Snapshots []*Snapshot
}

func (b *Batch) empty() bool { return len(b.Blocks) == 0 && len(b.Snapshots) == 0 }

// maxHeight returns the highest block height in the batch, or -1.
func (b *Batch) maxHeight() int64 {
	h := int64(-1)
	for _, blk := range b.Blocks {
		if blk.Height > h {
			h = blk.Height
		}
	}
	return h
}

// Request renders the batch as the ingest request handleIngest parses —
// the same frames streamfeed records, so shipping and recording are the
// same bytes by construction. Seen events become snapshot transactions
// carrying their first-contact times.
func (b *Batch) Request(dataset string) serve.IngestRequest {
	req := serve.IngestRequest{Dataset: dataset}
	for _, blk := range b.Blocks {
		req.Blocks = append(req.Blocks, serve.FrameBlock(blk))
	}
	for _, sn := range b.Snapshots {
		sf := serve.SnapshotFrame{TimeNS: sn.Time.UnixNano(), TipHeight: sn.TipHeight}
		for _, ev := range sn.Seen {
			sf.Txs = append(sf.Txs, serve.SnapshotTx{ID: ev.TxID.String(), FirstSeenNS: ev.At.UnixNano()})
		}
		req.Mempool = append(req.Mempool, sf)
	}
	return req
}

// Sink applies one batch to an audit target. Apply must be atomic-or-error
// from the observer's point of view: on error the run stops and reports it.
type Sink interface {
	Apply(ctx context.Context, b *Batch) error
}

// Config tunes a Run.
type Config struct {
	// BatchBlocks flushes the staged batch once it holds this many blocks
	// (default 16, matching streamfeed record's batching).
	BatchBlocks int
}

func (c Config) batchBlocks() int {
	if c.BatchBlocks > 0 {
		return c.BatchBlocks
	}
	return 16
}

// Stats summarizes one Run.
type Stats struct {
	Blocks    int
	Snapshots int
	Batches   int
	// Ship holds one emit-to-ack duration per flushed batch, in flush order —
	// the raw series behind the observer lag percentiles chainbench reports.
	Ship []time.Duration
}

// Run pulls events from src until io.EOF (or ctx cancellation), stages them
// into batches, and applies each batch through sink. Blocks must arrive in
// strictly increasing height order; a stale or duplicate height — gossip
// redelivery after churn — is dropped and counted rather than poisoning the
// feed, since the ingest side would reject the whole batch for it. The final
// partial batch flushes on EOF.
func Run(ctx context.Context, src Source, sink Sink, cfg Config) (*Stats, error) {
	st := &Stats{}
	var (
		batch      Batch
		batchStart time.Time
		lastHeight int64
		anyBlocks  bool
	)
	flush := func() error {
		if batch.empty() {
			return nil
		}
		if err := sink.Apply(ctx, &batch); err != nil {
			return err
		}
		ship := time.Since(batchStart)
		st.Ship = append(st.Ship, ship)
		st.Batches++
		mBatches.Inc()
		mLag.Set(float64(ship) / float64(time.Millisecond))
		batch = Batch{}
		return nil
	}
	for {
		ev, err := src.Next(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) {
				if ferr := flush(); ferr != nil {
					return st, ferr
				}
				return st, nil
			}
			return st, err
		}
		if batch.empty() {
			batchStart = time.Now()
		}
		if ev.Block != nil {
			if anyBlocks && ev.Block.Height <= lastHeight {
				mOutOfOrder.Inc()
				ev.Block = nil // keep the snapshot: the seen delta is new data
			} else {
				lastHeight = ev.Block.Height
				anyBlocks = true
				batch.Blocks = append(batch.Blocks, ev.Block)
				st.Blocks++
				mBlocks.Inc()
			}
		}
		if ev.Snapshot != nil {
			batch.Snapshots = append(batch.Snapshots, ev.Snapshot)
			st.Snapshots++
			mSnapshots.Inc()
		}
		if len(batch.Blocks) >= cfg.batchBlocks() {
			if err := flush(); err != nil {
				return st, err
			}
		}
	}
}

// ShipQuantile returns the q-quantile (0 ≤ q ≤ 1) of the run's emit-to-ack
// durations by nearest-rank on a sorted copy, or 0 with no batches.
func (st *Stats) ShipQuantile(q float64) time.Duration {
	if len(st.Ship) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), st.Ship...)
	for i := 1; i < len(sorted); i++ { // insertion sort: batch counts are small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// String renders the stats one-line, for driver logs.
func (st *Stats) String() string {
	return fmt.Sprintf("%d blocks, %d snapshots, %d batches, ship p50=%s p99=%s",
		st.Blocks, st.Snapshots, st.Batches,
		st.ShipQuantile(0.50).Round(time.Microsecond), st.ShipQuantile(0.99).Round(time.Microsecond))
}
