package observer_test

// Resume and redelivery tests for the HTTP sink: a rejected delivery whose
// blocks the service already holds must still land its snapshot frames
// (trim-and-resend, DESIGN.md §13), and after a chainauditd restart the sink
// syncs the recovered watermark and skips covered batches without
// re-applying their snapshots.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/faults"
	"chainaudit/internal/observer"
	"chainaudit/internal/p2p"
	"chainaudit/internal/serve"
)

// mkObsBatch wraps a run of chain blocks as one observer batch, with a
// snapshot per block carrying the body transactions' own times — the shape
// ChainSource yields.
func mkObsBatch(blocks []*chain.Block) *observer.Batch {
	b := &observer.Batch{Blocks: blocks}
	for _, blk := range blocks {
		sn := &observer.Snapshot{Time: blk.Time, TipHeight: blk.Height}
		for _, tx := range blk.Body() {
			sn.Seen = append(sn.Seen, p2p.SeenEvent{TxID: tx.ID, At: tx.Time})
		}
		b.Snapshots = append(b.Snapshots, sn)
	}
	return b
}

type resumeHealth struct {
	Datasets []struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint"`
		IndexLen    int    `json:"index_len"`
		Snapshots   int64  `json:"snapshots"`
		Watermark   *struct {
			Height int64 `json:"height"`
		} `json:"watermark"`
	} `json:"datasets"`
}

func healthDataset(t *testing.T, url, dataset string) (resumeHealth, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz resumeHealth
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	for i, d := range hz.Datasets {
		if d.Name == dataset {
			return hz, i
		}
	}
	t.Fatalf("dataset %q missing from healthz", dataset)
	return hz, -1
}

// TestHTTPSinkRedeliveryKeepsSnapshots is the regression test for the
// snapshot-loss bug: when the service rejects a delivery because it already
// holds the blocks (covering 409), it skips the request's mempool frames —
// the sink must trim the covered blocks and re-send so the snapshots still
// land, for full and partial coverage alike.
func TestHTTPSinkRedeliveryKeepsSnapshots(t *testing.T) {
	h, c := serveFixture(t)
	ts := httptest.NewServer(h)
	defer ts.Close()
	blocks := c.Blocks()
	if len(blocks) < 4 {
		t.Skipf("fixture too small: %d blocks", len(blocks))
	}

	for _, tc := range []struct {
		name    string
		preload int // blocks the service holds before the delivery
		dataset string
	}{
		{"full-coverage", 4, "dup-full"},
		{"partial-coverage", 2, "dup-part"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Preload blocks only — the service's watermark covers them but it
			// never saw the batch's snapshots (an ack lost in transit).
			pre := observer.Batch{Blocks: blocks[:tc.preload]}
			preSink := &observer.HTTPSink{URL: ts.URL, Dataset: tc.dataset, Backoff: time.Millisecond}
			if err := preSink.Apply(context.Background(), &pre); err != nil {
				t.Fatal(err)
			}
			_, i := healthDataset(t, ts.URL, tc.dataset)
			_ = i

			// A fresh sink (no covered state) redelivers the full batch with
			// its snapshots. The covering rejection must not swallow them.
			sink := &observer.HTTPSink{URL: ts.URL, Dataset: tc.dataset, Backoff: time.Millisecond}
			batch := mkObsBatch(blocks[:4])
			if err := sink.Apply(context.Background(), batch); err != nil {
				t.Fatalf("redelivery failed: %v", err)
			}
			hz, i := healthDataset(t, ts.URL, tc.dataset)
			d := hz.Datasets[i]
			if d.IndexLen != 4 {
				t.Errorf("index_len = %d, want 4", d.IndexLen)
			}
			if d.Snapshots != int64(len(batch.Snapshots)) {
				t.Errorf("snapshots = %d, want %d (redelivery lost frames)", d.Snapshots, len(batch.Snapshots))
			}
			if d.Watermark == nil || d.Watermark.Height != blocks[3].Height {
				t.Errorf("watermark = %+v, want height %d", d.Watermark, blocks[3].Height)
			}
		})
	}
}

// TestHTTPSinkResumeAfterServerRestart exercises the durable-streaming
// resume loop: ship half a feed to a WAL-backed server, kill it (no
// shutdown), restart over the same stream directory, sync the recovered
// watermark, and replay the whole feed — covered batches skip, the rest
// land, and the final state is byte-identical to an uninterrupted run with
// zero duplicated or lost snapshot frames.
func TestHTTPSinkResumeAfterServerRestart(t *testing.T) {
	dir := t.TempDir()
	boot := func() *serve.Server {
		srv, err := serve.New(serve.Config{StreamDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	_, c := serveFixture(t)
	blocks := c.Blocks()
	var batches []*observer.Batch
	for i := 0; i < len(blocks); i += 4 {
		end := i + 4
		if end > len(blocks) {
			end = len(blocks)
		}
		batches = append(batches, mkObsBatch(blocks[i:end]))
	}
	if len(batches) < 3 {
		t.Skipf("fixture too small: %d batches", len(batches))
	}
	cut := len(batches) / 2

	srv1 := boot()
	ts1 := httptest.NewServer(srv1.Handler())
	sink1 := &observer.HTTPSink{URL: ts1.URL, Dataset: "live", Backoff: time.Millisecond}
	for _, b := range batches[:cut] {
		if err := sink1.Apply(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	ts1.Close() // kill -9: no srv1.Close()

	srv2 := boot()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	sink2 := &observer.HTTPSink{URL: ts2.URL, Dataset: "live", Backoff: time.Millisecond}
	wm, ok, err := sink2.SyncWatermark(context.Background())
	if err != nil || !ok {
		t.Fatalf("SyncWatermark = %d, %v, %v; want recovered height", wm, ok, err)
	}
	lastShipped := batches[cut-1].Blocks[len(batches[cut-1].Blocks)-1].Height
	if wm != lastShipped {
		t.Fatalf("recovered watermark %d, want %d", wm, lastShipped)
	}

	// The observer replays its source from the start; the sink skips what
	// the recovered server already holds.
	for i, b := range batches {
		if err := sink2.Apply(context.Background(), b); err != nil {
			t.Fatalf("resume batch %d: %v", i, err)
		}
	}

	// Reference: the same feed into a fresh durable server, never killed.
	refDir := t.TempDir()
	srvRef, err := serve.New(serve.Config{StreamDir: refDir})
	if err != nil {
		t.Fatal(err)
	}
	tsRef := httptest.NewServer(srvRef.Handler())
	defer tsRef.Close()
	sinkRef := &observer.HTTPSink{URL: tsRef.URL, Dataset: "live", Backoff: time.Millisecond}
	for _, b := range batches {
		if err := sinkRef.Apply(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}

	hzGot, i := healthDataset(t, ts2.URL, "live")
	hzWant, j := healthDataset(t, tsRef.URL, "live")
	got, want := hzGot.Datasets[i], hzWant.Datasets[j]
	if got.Fingerprint != want.Fingerprint {
		t.Errorf("resumed fingerprint %q != uninterrupted %q", got.Fingerprint, want.Fingerprint)
	}
	if got.Snapshots != want.Snapshots {
		t.Errorf("resumed snapshots = %d, want %d (lost or duplicated frames)", got.Snapshots, want.Snapshots)
	}
	if got.IndexLen != want.IndexLen || got.IndexLen != len(blocks) {
		t.Errorf("resumed index_len = %d, want %d", got.IndexLen, len(blocks))
	}
	for _, target := range []string{
		"/v1/audits/ppe?dataset=live&format=text",
		"/v1/audits/ppe?dataset=live&format=text&window=16",
		"/v1/audits/lowfee?dataset=live&format=text&window=16",
	} {
		w := textBody(t, srvRef.Handler(), target)
		g := textBody(t, srv2.Handler(), target)
		if g != w {
			t.Errorf("%s: resumed audit diverged from uninterrupted run", target)
		}
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srvRef.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPSinkDuplicateFaultKeepsSnapshots runs the injected
// duplicate-delivery fault against a snapshot-carrying batch: the second
// delivery comes back as a covering rejection and must count as idempotent
// success without doubling the applied snapshot frames.
func TestHTTPSinkDuplicateFaultKeepsSnapshots(t *testing.T) {
	h, c := serveFixture(t)
	ts := httptest.NewServer(h)
	defer ts.Close()
	blocks := c.Blocks()

	plan, err := faults.ParseSpec("seed=3,p2p.dup=1")
	if err != nil {
		t.Fatal(err)
	}
	sink := &observer.HTTPSink{URL: ts.URL, Dataset: "dup-fault", Backoff: time.Millisecond, Faults: plan.P2P(1)}
	batch := mkObsBatch(blocks[:4])
	if err := sink.Apply(context.Background(), batch); err != nil {
		t.Fatalf("duplicate-fault delivery failed: %v", err)
	}
	hz, i := healthDataset(t, ts.URL, "dup-fault")
	d := hz.Datasets[i]
	if d.IndexLen != 4 {
		t.Errorf("index_len = %d, want 4", d.IndexLen)
	}
	if d.Snapshots != int64(len(batch.Snapshots)) {
		t.Errorf("snapshots = %d, want %d (duplicate delivery double-applied)", d.Snapshots, len(batch.Snapshots))
	}
}
