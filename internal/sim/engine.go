package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"chainaudit/internal/accel"
	"chainaudit/internal/chain"
	"chainaudit/internal/faults"
	"chainaudit/internal/mempool"
	"chainaudit/internal/miner"
	"chainaudit/internal/obs"
	"chainaudit/internal/stats"
	"chainaudit/internal/workload"
)

// Hoisted obs handles: the event loop is the simulator's innermost loop, so
// metric names resolve once per process. Counters are cumulative across
// every run in the process (the manifest reports totals).
var (
	mEvents      = obs.Default.Counter("sim.events")
	mBlocks      = obs.Default.Counter("sim.blocks_mined")
	mSnapshots   = obs.Default.Counter("sim.snapshots")
	mRunTime     = obs.Default.Timer("sim.run")
	mMissedSnaps = obs.Default.Counter("degraded.sim.snapshot_missed")
)

// eventKind enumerates the simulator's event types.
type eventKind int

const (
	evUserTx eventKind = iota
	evReceive
	evBlock
	evSnapshot
	evPayout
	evScam
	evLowFee
	evRBF
)

// event is one scheduled occurrence. seq breaks timestamp ties so the run
// is fully deterministic.
type event struct {
	at   time.Time
	seq  uint64
	kind eventKind
	// payloads (by kind)
	tx       *chain.Tx // evReceive
	nodeIdx  int       // evReceive: -1 = miner fabric, else observer index
	pool     *miner.Pool
	obsIdx   int // evSnapshot
	snapshot int // evSnapshot: running snapshot counter
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

// engine holds one run's mutable state.
type engine struct {
	cfg   Config
	rng   *stats.RNG
	inj   *faults.SimInjector // nil outside chaos runs: every hook no-ops
	queue eventQueue
	seq   uint64
	now   time.Time
	end   time.Time

	gen       *workload.Generator
	sched     *miner.Scheduler
	chain     *chain.Chain
	minerPool *mempool.Pool
	observers []*observerState
	truth     GroundTruth
	txIssued  int64
	payoutSet map[string]bool
	scamLeft  int
	prevHash  [32]byte
	height    int64
}

type observerState struct {
	cfg  ObserverConfig
	pool *mempool.Pool
	data *ObserverData
	// pending holds transactions scheduled for arrival so duplicates and
	// late deliveries after confirmation can be discarded cheaply.
	snapshots int
	// blackoutIdx cursors data.Blackouts: snapshot events arrive in time
	// order per observer, so window membership is an O(1) amortized check.
	blackoutIdx int
}

// inBlackout reports whether t falls inside one of the observer's injected
// blackout windows. Calls must be monotone in t (they are: the snapshot
// stream is).
func (os *observerState) inBlackout(t time.Time) bool {
	for os.blackoutIdx < len(os.data.Blackouts) && !t.Before(os.data.Blackouts[os.blackoutIdx].End) {
		os.blackoutIdx++
	}
	return os.blackoutIdx < len(os.data.Blackouts) && os.data.Blackouts[os.blackoutIdx].Contains(t)
}

// Run executes a simulation to completion and returns its result.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Duration <= 0 {
		return nil, errors.New("sim: non-positive duration")
	}
	if len(cfg.Pools) == 0 {
		return nil, errors.New("sim: no pools configured")
	}
	if cfg.MaxArrivalRate <= 0 {
		return nil, errors.New("sim: MaxArrivalRate must bound the schedule")
	}
	rng := stats.NewRNG(cfg.Seed)
	sched, err := miner.NewScheduler(cfg.Pools, rng.Fork(100))
	if err != nil {
		return nil, err
	}
	sched.SetMeanInterval(cfg.MeanBlockInterval)

	e := &engine{
		cfg:       cfg,
		rng:       rng,
		inj:       cfg.Faults.Sim(cfg.Seed),
		now:       cfg.Start,
		end:       cfg.Start.Add(cfg.Duration),
		gen:       workload.NewGenerator(rng.Fork(200), cfg.Users),
		sched:     sched,
		chain:     chain.New(),
		minerPool: mempool.New(mempool.WithMinFeeRate(0), mempool.WithCapacity(cfg.BlockCapacity)),
		payoutSet: make(map[string]bool),
		height:    cfg.StartHeight,
	}
	e.gen.Fees().MedianRate *= cfg.FeeFactor
	e.truth.PayoutTxs = make(map[string][]chain.TxID)
	e.truth.Accelerated = make(map[string][]accel.Record)

	for i, oc := range cfg.Observers {
		if oc.Name == "" {
			return nil, fmt.Errorf("sim: observer %d has no name", i)
		}
		os := &observerState{
			cfg:  oc,
			pool: mempool.New(mempool.WithMinFeeRate(oc.MinFeeRate), mempool.WithCapacity(cfg.BlockCapacity)),
			data: &ObserverData{Name: oc.Name, Seen: make(map[chain.TxID]SeenInfo)},
		}
		os.data.Blackouts = e.inj.Blackouts(i, cfg.Start, cfg.Start.Add(cfg.Duration))
		e.observers = append(e.observers, os)
		e.schedule(cfg.Start.Add(mempool.SnapshotInterval), &event{kind: evSnapshot, obsIdx: i})
	}

	// Seed the recurring event streams.
	e.schedule(workload.NextArrival(rng, cfg.Arrivals, cfg.Start, cfg.MaxArrivalRate), &event{kind: evUserTx})
	blockAt, winner := sched.NextBlockAfter(cfg.Start)
	e.schedule(blockAt, &event{kind: evBlock, pool: winner})

	if cfg.PayoutMeanInterval > 0 {
		pools := cfg.PayoutPools
		if pools == nil {
			for _, p := range cfg.Pools {
				pools = append(pools, p.Name)
			}
		}
		for _, name := range pools {
			p := e.poolByName(name)
			if p == nil {
				return nil, fmt.Errorf("sim: payout pool %q not in roster", name)
			}
			e.payoutSet[name] = true
			e.schedule(e.expAfter(cfg.Start, cfg.PayoutMeanInterval), &event{kind: evPayout, pool: p})
		}
	}
	if cfg.Scam != nil && cfg.Scam.Count > 0 {
		if !cfg.Scam.End.After(cfg.Scam.Start) {
			return nil, errors.New("sim: scam window empty")
		}
		e.truth.ScamWallet = cfg.Scam.Wallet
		e.scamLeft = cfg.Scam.Count
		span := cfg.Scam.End.Sub(cfg.Scam.Start)
		for i := 0; i < cfg.Scam.Count; i++ {
			at := cfg.Scam.Start.Add(time.Duration(rng.Float64() * float64(span)))
			e.schedule(at, &event{kind: evScam})
		}
	}
	if cfg.LowFeeMeanInterval > 0 {
		e.schedule(e.expAfter(cfg.Start, cfg.LowFeeMeanInterval), &event{kind: evLowFee})
	}

	// Main loop.
	defer mRunTime.Time()()
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.at.After(e.end) {
			// Keep draining block/receive events shortly past the end so
			// pending receives do not dangle, but stop generators.
			if ev.kind != evReceive {
				continue
			}
			if ev.at.After(e.end.Add(time.Minute)) {
				continue
			}
		}
		e.now = ev.at
		mEvents.Inc()
		if err := e.handle(ev); err != nil {
			return nil, err
		}
	}

	// Collect acceleration ground truth.
	for _, svc := range cfg.Accel {
		e.truth.Accelerated[svc.Pool()] = svc.Records()
	}
	res := &Result{
		Config:    cfg,
		Chain:     e.chain,
		Observers: make(map[string]*ObserverData, len(e.observers)),
		Truth:     e.truth,
		TxIssued:  e.txIssued,
	}
	for _, os := range e.observers {
		res.Observers[os.data.Name] = os.data
	}
	return res, nil
}

func (e *engine) poolByName(name string) *miner.Pool {
	for _, p := range e.cfg.Pools {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func (e *engine) schedule(at time.Time, ev *event) {
	ev.at = at
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

// expAfter returns now plus an exponential delay with the given mean.
func (e *engine) expAfter(now time.Time, mean time.Duration) time.Time {
	return now.Add(time.Duration(float64(mean) * e.rng.ExpFloat64()))
}

// lnDelay samples a log-normal propagation delay with the given median.
func (e *engine) lnDelay(median time.Duration) time.Duration {
	d := time.Duration(e.rng.LogNormal(math.Log(float64(median)), 0.7))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// broadcast schedules a transaction's arrival at the miner fabric and at
// every observer.
func (e *engine) broadcast(tx *chain.Tx) {
	e.txIssued++
	e.schedule(e.now.Add(e.lnDelay(e.cfg.MinerMedianDelay)), &event{kind: evReceive, tx: tx, nodeIdx: -1})
	for i, os := range e.observers {
		e.schedule(e.now.Add(e.lnDelay(os.cfg.MedianDelay)), &event{kind: evReceive, tx: tx, nodeIdx: i})
	}
}

// minerCongestion is the congestion level of the shared miner mempool.
func (e *engine) minerCongestion() mempool.CongestionLevel {
	return mempool.CongestionAt(e.minerPool.TotalVSize(), e.cfg.BlockCapacity)
}

// handle processes one event. It returns an error only for conditions that
// invalidate the whole run (a pool mining an unappendable block); everything
// else is a normal simulation outcome.
func (e *engine) handle(ev *event) error {
	switch ev.kind {
	case evUserTx:
		if !e.now.After(e.end) {
			tx := e.gen.UserTx(e.now, e.minerCongestion())
			e.broadcast(tx)
			e.maybeAccelerate(tx)
			if e.cfg.RBFProb > 0 && e.rng.Float64() < e.cfg.RBFProb {
				delay := e.cfg.RBFDelay
				if delay <= 0 {
					delay = 10 * time.Minute
				}
				e.schedule(e.expAfter(e.now, delay), &event{kind: evRBF, tx: tx})
			}
			e.schedule(workload.NextArrival(e.rng, e.cfg.Arrivals, e.now, e.cfg.MaxArrivalRate), &event{kind: evUserTx})
		}
	case evRBF:
		// The user bumps their payment only while it is still pending.
		if !e.now.After(e.end) && !e.chain.Contains(ev.tx.ID) {
			if bump := e.gen.FeeBump(ev.tx, e.now); bump != nil {
				e.truth.Replacements = append(e.truth.Replacements, Replacement{Old: ev.tx.ID, New: bump.ID})
				e.broadcast(bump)
			}
		}
	case evReceive:
		e.receive(ev)
	case evBlock:
		if e.inj.PoolOutage() {
			// The winning pool found a block but its infrastructure failed to
			// act on the slot; the network just waits for the next discovery.
		} else if err := e.mineBlock(ev.pool); err != nil {
			return err
		}
		if !e.now.After(e.end) {
			at, winner := e.sched.NextBlockAfter(e.now)
			e.schedule(at, &event{kind: evBlock, pool: winner})
		}
	case evSnapshot:
		os := e.observers[ev.obsIdx]
		if os.inBlackout(e.now) {
			// The monitoring node is down: the cadence slot produces no
			// snapshot at all (explicit absence, detectable as a series gap),
			// and the full-capture counter does not advance.
			os.data.MissedSnapshots++
			mMissedSnaps.Inc()
		} else {
			os.snapshots++
			mSnapshots.Inc()
			if os.cfg.FullSnapshotEvery > 0 && os.snapshots%os.cfg.FullSnapshotEvery == 0 {
				snap := os.pool.Capture(e.now, e.tipHeight())
				os.data.Fulls = append(os.data.Fulls, snap)
				os.data.Summaries = append(os.data.Summaries, mempool.Snapshot{
					Time: snap.Time, Count: snap.Count, TotalVSize: snap.TotalVSize,
					TipHeight: snap.TipHeight, Capacity: snap.Capacity,
				})
			} else {
				os.data.Summaries = append(os.data.Summaries, os.pool.Summary(e.now, e.tipHeight()))
			}
		}
		if next := e.now.Add(mempool.SnapshotInterval); !next.After(e.end) {
			e.schedule(next, &event{kind: evSnapshot, obsIdx: ev.obsIdx})
		}
	case evPayout:
		if !e.now.After(e.end) {
			tx := e.gen.PoolPayout(e.now, ev.pool.Wallets)
			e.truth.PayoutTxs[ev.pool.Name] = append(e.truth.PayoutTxs[ev.pool.Name], tx.ID)
			e.broadcast(tx)
			e.schedule(e.expAfter(e.now, e.cfg.PayoutMeanInterval), &event{kind: evPayout, pool: ev.pool})
		}
	case evScam:
		tx := e.gen.ScamPayment(e.now, e.cfg.Scam.Wallet, e.minerCongestion())
		e.truth.ScamTxs = append(e.truth.ScamTxs, tx.ID)
		e.broadcast(tx)
	case evLowFee:
		if !e.now.After(e.end) {
			tx := e.gen.LowBallTx(e.now)
			e.truth.LowFeeTxs = append(e.truth.LowFeeTxs, tx.ID)
			e.broadcast(tx)
			e.schedule(e.expAfter(e.now, e.cfg.LowFeeMeanInterval), &event{kind: evLowFee})
		}
	}
	return nil
}

func (e *engine) tipHeight() int64 {
	if tip := e.chain.Tip(); tip != nil {
		return tip.Height
	}
	return e.height - 1
}

func (e *engine) receive(ev *event) {
	if e.chain.Contains(ev.tx.ID) {
		return // confirmed before this node heard about it
	}
	if e.chain.ConflictsChain(ev.tx) {
		return // an on-chain transaction already spent its inputs
	}
	if ev.nodeIdx < 0 {
		// The miner fabric accepts everything (lenient pools may mine
		// sub-minimum transactions; strict pools filter at template time)
		// and honours replace-by-fee.
		_, _ = e.minerPool.AddOrReplace(ev.tx, e.now)
		return
	}
	os := e.observers[ev.nodeIdx]
	if e.inj.ObserverMiss() {
		// The observer never hears about this transaction: no pool entry, no
		// first-seen record. Downstream statistics see it only on-chain and
		// report the reduced coverage.
		os.data.MissedTxs++
		return
	}
	_, err := os.pool.AddOrReplace(ev.tx, e.now)
	switch {
	case err == nil:
		os.data.Seen[ev.tx.ID] = SeenInfo{
			Time:       e.now,
			TipHeight:  e.tipHeight(),
			Congestion: mempool.CongestionAt(os.pool.TotalVSize(), e.cfg.BlockCapacity),
			FeeRate:    ev.tx.FeeRate(),
		}
	case errors.Is(err, mempool.ErrBelowMinFee):
		os.data.DroppedBelowMin++
	}
}

// maybeAccelerate models a user purchasing dark-fee acceleration for a
// freshly issued transaction: only low-fee-rate transactions under
// congestion are worth accelerating.
func (e *engine) maybeAccelerate(tx *chain.Tx) {
	if len(e.cfg.Accel) == 0 || e.cfg.AccelProb <= 0 {
		return
	}
	if e.minerCongestion() < mempool.CongestionLow {
		return
	}
	if tx.FeeRate() >= 12 { // would confirm quickly anyway
		return
	}
	if e.rng.Float64() >= e.cfg.AccelProb {
		return
	}
	svc := e.cfg.Accel[e.rng.Intn(len(e.cfg.Accel))]
	top := e.topFeeRate()
	quote := svc.Quote(tx, top)
	svc.Accelerate(tx, quote, e.now)
}

// topFeeRate scans the miner mempool for the best pending fee-rate.
func (e *engine) topFeeRate() chain.SatPerVByte {
	var top chain.SatPerVByte
	for _, entry := range e.minerPool.Entries() {
		if r := entry.Tx.FeeRate(); r > top {
			top = r
		}
	}
	return top
}

// mineBlock lets the winning pool build and append a block. A block the
// chain rejects — a broken template policy or behaviour emitting duplicate
// or double-spending transactions — fails the run with enough context to
// identify the offending pool, instead of panicking the whole experiment
// suite off the process.
func (e *engine) mineBlock(winner *miner.Pool) error {
	var blk *chain.Block
	if e.rng.Float64() < e.cfg.EmptyBlockProb {
		blk = winner.BuildBlock(e.height, e.now, nil, e.prevHash, e.cfg.BlockCapacity)
	} else {
		entries := e.minerPool.Entries()
		if !winner.AllowLowFee {
			kept := entries[:0]
			for _, en := range entries {
				if en.Tx.FeeRate() >= chain.MinRelayFeeRate {
					kept = append(kept, en)
				}
			}
			entries = kept
		}
		blk = winner.BuildBlock(e.height, e.now, entries, e.prevHash, e.cfg.BlockCapacity)
	}
	if err := e.chain.Append(blk); err != nil {
		return fmt.Errorf("sim: pool %q mined invalid block at height %d (%s): %w",
			winner.Name, e.height, e.now.UTC().Format(time.RFC3339), err)
	}
	mBlocks.Inc()
	e.prevHash = blk.Hash
	e.height++

	confirmed := make(map[chain.TxID]bool, len(blk.Body()))
	for _, tx := range blk.Body() {
		confirmed[tx.ID] = true
	}
	e.minerPool.RemoveConfirmed(blk)
	e.minerPool.RemoveConflicts(blk)
	e.minerPool.EvictToSize(e.cfg.MempoolCapacity)
	for _, os := range e.observers {
		os.pool.RemoveConfirmed(blk)
		os.pool.RemoveConflicts(blk)
		os.pool.EvictToSize(e.cfg.MempoolCapacity)
	}
	e.gen.Forget(confirmed)
	return nil
}
