package sim

import (
	"time"

	"chainaudit/internal/accel"
	"chainaudit/internal/chain"
	"chainaudit/internal/faults"
	"chainaudit/internal/mempool"
)

// SeenInfo records an observer's first contact with a transaction.
type SeenInfo struct {
	// Time the observer's node admitted the transaction.
	Time time.Time
	// TipHeight was the chain tip when admitted; commit delay in blocks is
	// confirmation height minus this.
	TipHeight int64
	// Congestion at admission, for the fee-vs-congestion analyses.
	Congestion mempool.CongestionLevel
	// FeeRate is the transaction's public fee-rate, recorded here so the
	// fee/delay analyses need no chain lookup.
	FeeRate chain.SatPerVByte
}

// ObserverData is everything one observation node recorded.
type ObserverData struct {
	Name string
	// Summaries is the 15-second snapshot stream (counts and sizes only).
	Summaries []mempool.Snapshot
	// Fulls are the periodic complete captures of the pending set.
	Fulls []mempool.Snapshot
	// Seen maps every admitted transaction to its first-contact metadata.
	Seen map[chain.TxID]SeenInfo
	// DroppedBelowMin counts transactions the node refused for violating
	// its fee-rate policy.
	DroppedBelowMin int64
	// Blackouts are the snapshot blackout windows injected into this node's
	// capture stream (nil outside chaos runs). Snapshots inside a window are
	// explicitly absent from Summaries/Fulls, never present-but-empty.
	Blackouts []faults.Window
	// MissedSnapshots counts cadence slots skipped inside blackout windows.
	MissedSnapshots int64
	// MissedTxs counts transactions the fault layer hid from this node
	// entirely (the observer-miss knob), shrinking Seen coverage.
	MissedTxs int64
}

// GroundTruth records every planted deviation so audits can be validated
// against known positives and negatives.
type GroundTruth struct {
	// PayoutTxs lists each pool's self-interest transactions (pool name →
	// issued payout txids).
	PayoutTxs map[string][]chain.TxID
	// ScamTxs are the victim payments of the planted scam episode.
	ScamTxs []chain.TxID
	// ScamWallet is the attacker's address ("" when no scam was planted).
	ScamWallet chain.Address
	// LowFeeTxs are the sub-minimum fee-rate transactions issued.
	LowFeeTxs []chain.TxID
	// Accelerated maps pool name → dark-fee purchases at that pool's
	// service.
	Accelerated map[string][]accel.Record
	// Replacements records fee-bump (RBF) double-spends: the original and
	// the conflicting replacement that superseded it.
	Replacements []Replacement
}

// Replacement is one replace-by-fee pair.
type Replacement struct {
	Old, New chain.TxID
}

// Result is a completed simulation run.
type Result struct {
	Config    Config
	Chain     *chain.Chain
	Observers map[string]*ObserverData
	Truth     GroundTruth
	// TxIssued counts all user-workload transactions broadcast.
	TxIssued int64
}

// Observer returns the named observer's data, or nil.
func (r *Result) Observer(name string) *ObserverData {
	return r.Observers[name]
}
