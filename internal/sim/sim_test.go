package sim

import (
	"strings"
	"testing"
	"time"

	"chainaudit/internal/accel"
	"chainaudit/internal/chain"
	"chainaudit/internal/gbt"
	"chainaudit/internal/mempool"
	"chainaudit/internal/miner"
	"chainaudit/internal/obs"
	"chainaudit/internal/stats"
	"chainaudit/internal/wallet"
	"chainaudit/internal/workload"
)

var simStart = time.Unix(1_577_836_800, 0)

// smallConfig builds a quick run: a few pools, modest congestion, all event
// streams active.
func smallConfig(seed uint64) Config {
	pools := []*miner.Pool{
		miner.NewPool("F2Pool", "/F2Pool/", 0.30, 4),
		miner.NewPool("Poolin", "/Poolin/", 0.25, 4),
		miner.NewPool("BTC.com", "/BTC.com/", 0.20, 4),
		miner.NewPool("ViaBTC", "/ViaBTC/", 0.15, 4),
	}
	pools[0].AllowLowFee = true
	capacity := int64(50_000)
	// ~1.1x capacity on average: persistent mild congestion.
	rate := 1.1 * float64(capacity) / 600.0 / 300.0
	return Config{
		Seed:               seed,
		Start:              simStart,
		Duration:           8 * time.Hour,
		Pools:              pools,
		BlockCapacity:      capacity,
		Arrivals:           workload.ConstantRate(rate),
		MaxArrivalRate:     rate,
		Users:              300,
		PayoutMeanInterval: 30 * time.Minute,
		LowFeeMeanInterval: time.Hour,
		Observers: []ObserverConfig{
			{Name: "default", MinFeeRate: 1, MedianDelay: 1200 * time.Millisecond, FullSnapshotEvery: 40},
			{Name: "permissive", MinFeeRate: 0, MedianDelay: 400 * time.Millisecond, FullSnapshotEvery: 40},
		},
	}
}

func TestRunProducesConsistentWorld(t *testing.T) {
	res, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain.Len() < 20 {
		t.Fatalf("only %d blocks in 8h", res.Chain.Len())
	}
	if res.TxIssued < 500 {
		t.Fatalf("only %d txs issued", res.TxIssued)
	}
	// Chain integrity: heights contiguous, blocks valid, times increasing.
	blocks := res.Chain.Blocks()
	for i, b := range blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d invalid: %v", i, err)
		}
		if b.VSize() > 50_000+120 {
			t.Fatalf("block %d exceeds configured capacity: %d", i, b.VSize())
		}
		if i > 0 {
			if b.Height != blocks[i-1].Height+1 {
				t.Fatal("height gap")
			}
			if b.Time.Before(blocks[i-1].Time) {
				t.Fatal("time regression")
			}
		}
	}
	// Every block attributed to a configured pool.
	for _, b := range blocks {
		if b.MinerTag() == "" {
			t.Fatal("unattributed block")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Chain.Len() != b.Chain.Len() || a.TxIssued != b.TxIssued {
		t.Fatalf("runs diverged: %d/%d blocks, %d/%d txs",
			a.Chain.Len(), b.Chain.Len(), a.TxIssued, b.TxIssued)
	}
	for i := range a.Chain.Blocks() {
		if a.Chain.Blocks()[i].Hash != b.Chain.Blocks()[i].Hash {
			t.Fatalf("block %d hash diverged", i)
		}
	}
	c, err := Run(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Chain.Len() == a.Chain.Len() && c.TxIssued == a.TxIssued {
		t.Error("different seeds produced identical run summary (suspicious)")
	}
}

func TestObserversRecord(t *testing.T) {
	res, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	def := res.Observer("default")
	perm := res.Observer("permissive")
	if def == nil || perm == nil {
		t.Fatal("observers missing")
	}
	// 8h at 15s cadence: ~1920 summaries.
	if len(def.Summaries) < 1800 || len(def.Summaries) > 1930 {
		t.Errorf("default summaries = %d", len(def.Summaries))
	}
	if len(def.Fulls) == 0 {
		t.Error("no full snapshots")
	}
	for _, s := range def.Fulls {
		if !s.Full() {
			t.Fatal("full snapshot without txs")
		}
		if s.Capacity != 50_000 {
			t.Fatal("snapshot capacity not propagated")
		}
	}
	// The permissive node sees (essentially) everything; the default node
	// drops sub-minimum transactions.
	if def.DroppedBelowMin == 0 {
		t.Error("default node never dropped a low-fee tx")
	}
	if perm.DroppedBelowMin != 0 {
		t.Error("permissive node dropped txs")
	}
	if len(perm.Seen) <= len(def.Seen) {
		t.Errorf("permissive saw %d <= default %d", len(perm.Seen), len(def.Seen))
	}
	// Seen metadata is sane.
	checked := 0
	for id, info := range perm.Seen {
		if info.Time.Before(simStart) {
			t.Fatal("seen before start")
		}
		if loc, ok := res.Chain.Locate(id); ok {
			if loc.Height < info.TipHeight {
				t.Fatalf("confirmed below seen tip: %d < %d", loc.Height, info.TipHeight)
			}
		}
		checked++
		if checked > 2000 {
			break
		}
	}
}

func TestPayoutsAndLowFeeGroundTruth(t *testing.T) {
	res, err := Run(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	totalPayouts := 0
	for pool, ids := range res.Truth.PayoutTxs {
		if len(ids) == 0 {
			t.Errorf("pool %s issued no payouts", pool)
		}
		totalPayouts += len(ids)
	}
	// 4 pools × ~16 payouts in 8h at 30m mean.
	if totalPayouts < 20 || totalPayouts > 150 {
		t.Errorf("total payouts = %d", totalPayouts)
	}
	if len(res.Truth.LowFeeTxs) == 0 {
		t.Error("no low-fee txs issued")
	}
	// Low-fee transactions may only be confirmed by AllowLowFee pools.
	for _, id := range res.Truth.LowFeeTxs {
		loc, ok := res.Chain.Locate(id)
		if !ok {
			continue
		}
		b := res.Chain.BlockAt(loc.Height)
		if b.MinerTag() != "/F2Pool/Mined by F2Pool" {
			t.Errorf("low-fee tx confirmed by strict pool %q", b.MinerTag())
		}
	}
}

func TestScamEpisode(t *testing.T) {
	cfg := smallConfig(4)
	scamWallet := wallet.DeriveAddress("twitter-scam")
	cfg.Scam = &ScamConfig{
		Wallet: scamWallet,
		Start:  simStart.Add(2 * time.Hour),
		End:    simStart.Add(5 * time.Hour),
		Count:  60,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth.ScamTxs) != 60 {
		t.Fatalf("scam txs = %d", len(res.Truth.ScamTxs))
	}
	confirmed := 0
	for _, id := range res.Truth.ScamTxs {
		if res.Chain.Contains(id) {
			confirmed++
		}
	}
	// Nobody censors by default: most must confirm (stragglers with cheap
	// fees may still be pending when the congested run ends).
	if confirmed < 35 {
		t.Errorf("only %d/60 scam txs confirmed", confirmed)
	}
	if res.Truth.ScamWallet != scamWallet {
		t.Error("scam wallet not recorded")
	}
}

func TestSelfishPoolWinsItsOwnPayouts(t *testing.T) {
	cfg := smallConfig(5)
	// ViaBTC (15% hash rate) selfishly accelerates its own payouts. Push
	// arrivals to 1.3x capacity so modest-fee payouts genuinely wait.
	rate := 1.3 * float64(cfg.BlockCapacity) / 600.0 / 300.0
	cfg.Arrivals = workload.ConstantRate(rate)
	cfg.MaxArrivalRate = rate
	cfg.Pools[3].PrioritizeOwnWallets()
	cfg.PayoutPools = []string{"ViaBTC"}
	cfg.PayoutMeanInterval = 12 * time.Minute
	cfg.Duration = 12 * time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := res.Truth.PayoutTxs["ViaBTC"]
	if len(ids) < 20 {
		t.Fatalf("too few payouts: %d", len(ids))
	}
	own, other := 0, 0
	for _, id := range ids {
		loc, ok := res.Chain.Locate(id)
		if !ok {
			continue
		}
		if res.Chain.BlockAt(loc.Height).MinerTag() == "/ViaBTC/Mined by ViaBTC" {
			own++
		} else {
			other++
		}
	}
	if own+other == 0 {
		t.Fatal("no payouts confirmed")
	}
	// With 15% hash rate but self-acceleration under congestion, ViaBTC
	// should capture clearly more than its fair share of its own payouts
	// (the paper's Table 2 pools show 2-6x amplification).
	frac := float64(own) / float64(own+other)
	if frac < 0.25 {
		t.Errorf("ViaBTC mined %.0f%% of its payouts; expected amplification above 15%%", frac*100)
	}
}

func TestAccelerationPurchases(t *testing.T) {
	cfg := smallConfig(6)
	svc := accel.NewService("BTC.com", stats.NewRNG(99))
	cfg.Accel = []*accel.Service{svc}
	cfg.AccelProb = 0.5
	cfg.Pools[2].SellAcceleration(svc.IsAccelerated) // BTC.com
	cfg.Duration = 12 * time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Truth.Accelerated["BTC.com"]
	if len(recs) == 0 {
		t.Fatal("no accelerations purchased")
	}
	if svc.Len() != len(recs) {
		t.Error("truth out of sync with service")
	}
	// Accelerated txs that BTC.com mined should sit near the top of the
	// block despite low public fees.
	topPlaced := 0
	checked := 0
	for _, r := range recs {
		loc, ok := res.Chain.Locate(r.TxID)
		if !ok {
			continue
		}
		b := res.Chain.BlockAt(loc.Height)
		if b.MinerTag() != "/BTC.com/Mined by BTC.com" {
			continue
		}
		checked++
		if loc.Index <= len(b.Body())/4 {
			topPlaced++
		}
	}
	if checked > 0 && topPlaced*2 < checked {
		t.Errorf("only %d/%d accelerated txs near top of BTC.com blocks", topPlaced, checked)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := smallConfig(1)
	cfg.Pools = nil
	if _, err := Run(cfg); err == nil {
		t.Error("no pools accepted")
	}
	cfg = smallConfig(1)
	cfg.MaxArrivalRate = 0
	cfg.Arrivals = workload.ConstantRate(1)
	if _, err := Run(cfg); err == nil {
		t.Error("missing rate bound accepted")
	}
	cfg = smallConfig(1)
	cfg.PayoutPools = []string{"NoSuchPool"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown payout pool accepted")
	}
	cfg = smallConfig(1)
	cfg.Observers = []ObserverConfig{{}}
	if _, err := Run(cfg); err == nil {
		t.Error("unnamed observer accepted")
	}
	cfg = smallConfig(1)
	cfg.Scam = &ScamConfig{Wallet: "x", Start: simStart, End: simStart, Count: 5}
	if _, err := Run(cfg); err == nil {
		t.Error("empty scam window accepted")
	}
}

func TestCongestionDevelops(t *testing.T) {
	cfg := smallConfig(9)
	// Push arrivals well past capacity.
	rate := 2.0 * float64(cfg.BlockCapacity) / 600.0 / 300.0
	cfg.Arrivals = workload.ConstantRate(rate)
	cfg.MaxArrivalRate = rate
	cfg.Duration = 6 * time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := res.Observer("permissive")
	congested := 0
	for _, s := range perm.Summaries {
		if s.Congestion() > mempool.CongestionNone {
			congested++
		}
	}
	frac := float64(congested) / float64(len(perm.Summaries))
	if frac < 0.5 {
		t.Errorf("congested fraction = %v under 2x overload", frac)
	}
	// Confirmed fee-rates under congestion should exceed the issue median:
	// cheap txs wait.
	var confirmedRates []float64
	for _, b := range res.Chain.Blocks() {
		for _, tx := range b.Body() {
			confirmedRates = append(confirmedRates, float64(tx.FeeRate()))
		}
	}
	if len(confirmedRates) == 0 {
		t.Fatal("nothing confirmed")
	}
	med := stats.PercentileUnsorted(confirmedRates, 50)
	if med < 20 {
		t.Errorf("median confirmed fee-rate %v; congestion should push it up", med)
	}
	_ = chain.MaxBlockVSize
}

func TestRBFReplacementsWin(t *testing.T) {
	cfg := smallConfig(11)
	cfg.RBFProb = 0.08
	cfg.RBFDelay = 5 * time.Minute
	cfg.Duration = 10 * time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth.Replacements) < 10 {
		t.Fatalf("replacements = %d, want a few dozen", len(res.Truth.Replacements))
	}
	oldWins, newWins, bothPending := 0, 0, 0
	for _, r := range res.Truth.Replacements {
		oldConfirmed := res.Chain.Contains(r.Old)
		newConfirmed := res.Chain.Contains(r.New)
		if oldConfirmed && newConfirmed {
			t.Fatalf("double spend: both %s and %s confirmed", r.Old.Short(), r.New.Short())
		}
		switch {
		case oldConfirmed:
			oldWins++
		case newConfirmed:
			newWins++
		default:
			bothPending++
		}
	}
	// The bump pays 1.3-3x: replacements must usually win.
	if newWins <= oldWins {
		t.Errorf("replacements won %d vs originals %d", newWins, oldWins)
	}
	t.Logf("RBF outcomes: new=%d old=%d pending=%d", newWins, oldWins, bothPending)
}

// dupPolicy is a deliberately broken template policy: it duplicates the
// first selected transaction, producing a block the chain must reject.
type dupPolicy struct{}

func (dupPolicy) Name() string { return "dup" }

func (dupPolicy) Build(entries []*mempool.Entry, maxVSize int64) gbt.Template {
	tpl := gbt.FeeRate{}.Build(entries, maxVSize)
	if len(tpl.Txs) > 0 {
		tpl.Txs = append(tpl.Txs, tpl.Txs[0])
		tpl.VSize += tpl.Txs[0].VSize
		tpl.TotalFee += tpl.Txs[0].Fee
	}
	return tpl
}

// TestInvalidMinedBlockFailsRunWithError locks in the ISSUE 2 bugfix: a
// template policy that emits an invalid block must fail the run with a
// contextual error, not panic the process.
func TestInvalidMinedBlockFailsRunWithError(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Run panicked instead of returning an error: %v", r)
		}
	}()
	cfg := smallConfig(3)
	cfg.Duration = 4 * time.Hour
	for _, p := range cfg.Pools {
		p.Policy = dupPolicy{}
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("Run accepted an invalid mined block")
	}
	msg := err.Error()
	for _, want := range []string{"mined invalid block", "pool", "height"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// TestRunRecordsObsCounters checks the simulator's observability hooks: a
// run must account its events, mined blocks, and snapshots.
func TestRunRecordsObsCounters(t *testing.T) {
	events0 := obs.Default.Counter("sim.events").Value()
	blocks0 := obs.Default.Counter("sim.blocks_mined").Value()
	snaps0 := obs.Default.Counter("sim.snapshots").Value()
	runs0 := obs.Default.Timer("sim.run").Stats().Count

	res, err := Run(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := obs.Default.Counter("sim.blocks_mined").Value() - blocks0; d != int64(res.Chain.Len()) {
		t.Errorf("blocks_mined delta = %d, chain has %d blocks", d, res.Chain.Len())
	}
	if d := obs.Default.Counter("sim.events").Value() - events0; d < int64(res.TxIssued) {
		t.Errorf("events delta = %d, below issued tx count %d", d, res.TxIssued)
	}
	wantSnaps := int64(0)
	for _, od := range res.Observers {
		wantSnaps += int64(len(od.Summaries))
	}
	if d := obs.Default.Counter("sim.snapshots").Value() - snaps0; d != wantSnaps {
		t.Errorf("snapshots delta = %d, observers recorded %d", d, wantSnaps)
	}
	if d := obs.Default.Timer("sim.run").Stats().Count - runs0; d != 1 {
		t.Errorf("sim.run timer delta = %d, want 1", d)
	}
}
