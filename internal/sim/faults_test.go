package sim

import (
	"testing"
	"time"

	"chainaudit/internal/faults"
	"chainaudit/internal/mempool"
)

func chaosPlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return p
}

// resultSignature condenses the run facets any injected fault would perturb.
type resultSignature struct {
	blocks    int
	txIssued  int64
	tipHash   [32]byte
	seenA     int
	summaries int
}

func signatureOf(res *Result) resultSignature {
	sig := resultSignature{
		blocks:   res.Chain.Len(),
		txIssued: res.TxIssued,
	}
	if tip := res.Chain.Tip(); tip != nil {
		sig.tipHash = tip.Hash
	}
	if obs := res.Observer("default"); obs != nil {
		sig.seenA = len(obs.Seen)
		sig.summaries = len(obs.Summaries)
	}
	return sig
}

// TestZeroRatePlanIsByteIdentical pins the tentpole invariant at the sim
// layer: wiring a zero-rate plan must leave the run indistinguishable from
// an unfaulted one, because fault decisions draw from their own streams and
// a zero-rate plan derives a nil injector.
func TestZeroRatePlanIsByteIdentical(t *testing.T) {
	base, err := Run(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(5)
	cfg.Faults = chaosPlan(t, "seed=123") // seeded but all rates zero
	wired, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if signatureOf(base) != signatureOf(wired) {
		t.Fatalf("zero-rate plan changed the run:\n base %+v\nwired %+v",
			signatureOf(base), signatureOf(wired))
	}
	obs := wired.Observer("default")
	if len(obs.Blackouts) != 0 || obs.MissedSnapshots != 0 || obs.MissedTxs != 0 {
		t.Fatalf("zero-rate plan recorded faults: %+v", obs)
	}
}

func TestPoolOutagesReduceBlocks(t *testing.T) {
	base, err := Run(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(6)
	cfg.Faults = chaosPlan(t, "seed=1,pool.outage=0.5")
	faulted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Chain.Len() >= base.Chain.Len() {
		t.Fatalf("50%% pool outages did not reduce block count: %d vs %d",
			faulted.Chain.Len(), base.Chain.Len())
	}
	if faulted.Chain.Len() == 0 {
		t.Fatal("outages killed every block")
	}
	// The chain must stay structurally sound: contiguous heights.
	blocks := faulted.Chain.Blocks()
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Height != blocks[i-1].Height+1 {
			t.Fatal("outage produced a height gap")
		}
	}
}

func TestObserverMissShrinksSeenCoverage(t *testing.T) {
	base, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(7)
	cfg.Faults = chaosPlan(t, "seed=2,obs.miss=0.4")
	faulted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bObs, fObs := base.Observer("permissive"), faulted.Observer("permissive")
	if fObs.MissedTxs == 0 {
		t.Fatal("40% observer miss recorded no missed txs")
	}
	if len(fObs.Seen) >= len(bObs.Seen) {
		t.Fatalf("seen coverage did not shrink: %d vs %d", len(fObs.Seen), len(bObs.Seen))
	}
	// Missed transactions are absent, not present with zero times.
	for id, info := range fObs.Seen {
		if info.Time.IsZero() {
			t.Fatalf("tx %x recorded with zero first-seen time", id[:4])
		}
	}
}

// TestBlackoutCreatesExplicitSnapshotGaps pins the satellite requirement
// end-to-end: blackout windows yield explicitly absent snapshots whose
// spacing FindGaps detects, and the missing slots are counted.
func TestBlackoutCreatesExplicitSnapshotGaps(t *testing.T) {
	cfg := smallConfig(8)
	cfg.Faults = chaosPlan(t, "seed=3,snap.blackout=0.3,snap.window=20m")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := res.Observer("default")
	if len(obs.Blackouts) == 0 {
		t.Fatal("no blackout windows at 30% duty cycle over 8h")
	}
	if obs.MissedSnapshots == 0 {
		t.Fatal("blackout windows but no missed snapshots")
	}
	// Summaries skip the windows: no snapshot timestamp falls inside one.
	for _, s := range obs.Summaries {
		for _, w := range obs.Blackouts {
			if w.Contains(s.Time) {
				t.Fatalf("snapshot at %v inside blackout %+v", s.Time, w)
			}
		}
		if s.Time.IsZero() {
			t.Fatal("zero-filled snapshot in the stream")
		}
	}
	gaps := mempool.FindGaps(obs.Summaries, mempool.SnapshotInterval)
	if len(gaps) == 0 {
		t.Fatal("blackouts produced no detectable series gaps")
	}
	var missedInGaps int
	for _, g := range gaps {
		missedInGaps += g.Missed
	}
	if int64(missedInGaps) < obs.MissedSnapshots/2 {
		t.Fatalf("gap accounting inconsistent: %d missed slots vs %d counted", missedInGaps, obs.MissedSnapshots)
	}
	// Cadence + blackout accounting: captured + missed covers the run.
	if got := int64(len(obs.Summaries)) + obs.MissedSnapshots; got < int64(8*time.Hour/mempool.SnapshotInterval)-1 {
		t.Fatalf("snapshot slots unaccounted for: %d", got)
	}
}

func TestChaosRunsAreReproducible(t *testing.T) {
	run := func() *Result {
		cfg := smallConfig(9)
		cfg.Faults = chaosPlan(t, "seed=4,pool.outage=0.2,obs.miss=0.2,snap.blackout=0.2")
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if signatureOf(a) != signatureOf(b) {
		t.Fatalf("same chaos seed diverged:\n%+v\n%+v", signatureOf(a), signatureOf(b))
	}
	ao, bo := a.Observer("default"), b.Observer("default")
	if ao.MissedTxs != bo.MissedTxs || ao.MissedSnapshots != bo.MissedSnapshots {
		t.Fatalf("fault counts diverged: %d/%d vs %d/%d",
			ao.MissedTxs, ao.MissedSnapshots, bo.MissedTxs, bo.MissedSnapshots)
	}
	for id, info := range ao.Seen {
		if other, ok := bo.Seen[id]; !ok || !other.Time.Equal(info.Time) {
			t.Fatalf("seen record for %x diverged", id[:4])
		}
	}
}
