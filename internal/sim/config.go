// Package sim is the discrete-event simulator that stands in for the
// Bitcoin mainnet data the paper collected. It drives user transaction
// arrivals through a latency-modelled relay fabric into mining pools'
// shared mempool and per-observer mempools, schedules Poisson block
// discovery weighted by hash rate, lets pools apply their (mis)behaviours
// when building blocks, and records everything the audits consume: the
// chain, observer snapshot streams, per-transaction first-seen metadata,
// and the ground truth of every planted deviation.
package sim

import (
	"time"

	"chainaudit/internal/accel"
	"chainaudit/internal/chain"
	"chainaudit/internal/faults"
	"chainaudit/internal/miner"
	"chainaudit/internal/workload"
)

// ObserverConfig describes one observation node (the paper ran two: a
// default-configuration node for data set A and a permissive, well-peered
// node for data set B).
type ObserverConfig struct {
	// Name keys the observer's data in the result.
	Name string
	// MinFeeRate is the node's admission threshold (1 sat/vB default
	// config; 0 for the permissive node).
	MinFeeRate chain.SatPerVByte
	// MedianDelay is the median propagation delay from broadcast to this
	// node. A poorly peered node (8 peers) sees transactions later than a
	// well-peered one (125 peers).
	MedianDelay time.Duration
	// FullSnapshotEvery captures the complete pending set on every Nth
	// 15-second snapshot (0 disables full captures).
	FullSnapshotEvery int
}

// ScamConfig plants a scam-payment episode (§5.3's Twitter scam analogue).
type ScamConfig struct {
	// Wallet is the attacker's address.
	Wallet chain.Address
	// Start/End bound the attack window.
	Start, End time.Time
	// Count is the approximate number of victim payments.
	Count int
}

// Config parameterizes one simulation run.
type Config struct {
	// Seed determines every random choice in the run.
	Seed uint64
	// Start is the simulated wall-clock origin.
	Start time.Time
	// Duration is the simulated time span.
	Duration time.Duration
	// Pools mine blocks. Their behaviours must be wired before the run.
	Pools []*miner.Pool
	// BlockCapacity is the block body budget in vbytes. The default
	// simulations scale the real 1 MB down (fewer transactions per block,
	// identical queueing shape) to keep run times tractable; see DESIGN.md.
	BlockCapacity int64
	// MempoolCapacity caps each node's pending set in vbytes; when the
	// backlog exceeds it, the lowest-fee-rate transactions are evicted,
	// the way Bitcoin Core trims an over-budget mempool (whose default,
	// 300 MB against 1 MB blocks, is a similarly loose bound). Defaults to
	// 200 block capacities: far above any congestion level the paper
	// observed (15x), so it never touches experiment dynamics, while
	// bounding memory and per-block template cost under pathological
	// sustained overload.
	MempoolCapacity int64
	// MeanBlockInterval is the expected block spacing (default 10 min).
	MeanBlockInterval time.Duration
	// StartHeight is the first mined block's height (default 630,000 — the
	// 6.25 BTC subsidy era of 2020). Earlier heights select earlier
	// halving eras for Table 5 style experiments.
	StartHeight int64
	// FeeFactor scales the workload's median fee-rate (default 1), for
	// modelling hotter or cooler fee markets across eras.
	FeeFactor float64
	// EmptyBlockProb is the chance a winning pool mines a coinbase-only
	// block (the paper's data sets contain 18-240 such blocks).
	EmptyBlockProb float64
	// Arrivals is the user transaction arrival schedule; MaxArrivalRate
	// must bound it.
	Arrivals       workload.RateSchedule
	MaxArrivalRate float64
	// Users is the size of the synthetic user population.
	Users int
	// Observers to instrument (may be empty: data set C needs none).
	Observers []ObserverConfig
	// MinerMedianDelay is the median broadcast-to-miner propagation delay.
	MinerMedianDelay time.Duration
	// PayoutMeanInterval is the mean spacing of each top pool's payout
	// (self-interest) transactions; zero disables payouts.
	PayoutMeanInterval time.Duration
	// PayoutPools names the pools that issue payouts (default: all).
	PayoutPools []string
	// Scam optionally plants a scam episode.
	Scam *ScamConfig
	// LowFeeMeanInterval is the mean spacing of deliberately sub-minimum
	// fee transactions; zero disables them.
	LowFeeMeanInterval time.Duration
	// Accel optionally attaches acceleration services. Purchases happen
	// when a congested low-fee transaction is issued, with AccelProb.
	Accel     []*accel.Service
	AccelProb float64
	// RBFProb is the chance a freshly issued user transaction is later
	// fee-bumped (replace-by-fee double-spend); zero disables RBF.
	RBFProb float64
	// RBFDelay is the mean delay before the bump is broadcast.
	RBFDelay time.Duration
	// Faults optionally injects infrastructure failures (pool outages,
	// observer misses, snapshot blackouts). Fault decisions draw from their
	// own seeded streams, never from the run's RNG, so a nil or zero-rate
	// plan leaves the run byte-identical to an unfaulted one.
	Faults *faults.Plan
}

// withDefaults fills zero fields with production defaults.
func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = time.Unix(1_577_836_800, 0) // 2020-01-01T00:00:00Z
	}
	if c.BlockCapacity == 0 {
		c.BlockCapacity = 100_000
	}
	if c.MempoolCapacity == 0 {
		c.MempoolCapacity = 200 * c.BlockCapacity
	}
	if c.MeanBlockInterval == 0 {
		c.MeanBlockInterval = miner.TargetBlockInterval
	}
	if c.Users == 0 {
		c.Users = 2_000
	}
	if c.MinerMedianDelay == 0 {
		c.MinerMedianDelay = 400 * time.Millisecond
	}
	if c.StartHeight == 0 {
		c.StartHeight = 630_000
	}
	if c.FeeFactor == 0 {
		c.FeeFactor = 1
	}
	if c.Arrivals == nil {
		// Hover around 85% of capacity so the mempool oscillates between
		// clear and congested, like Figure 3.
		rate := 0.85 * float64(c.BlockCapacity) / c.MeanBlockInterval.Seconds() / 300.0
		c.Arrivals = workload.ConstantRate(rate)
		c.MaxArrivalRate = rate
	}
	return c
}
