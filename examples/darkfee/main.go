// Dark-fee example: the §5.4 pipeline — price a mempool against an
// acceleration service (Appendix G / Figure 14), then detect dark-fee
// transactions in the chain by their SPPE signature and validate against
// the service's public oracle (Table 4).
//
//	go run ./examples/darkfee
package main

import (
	"fmt"
	"log"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/index"
	"chainaudit/internal/report"
	"chainaudit/internal/stats"
)

func main() {
	ds, err := dataset.BuildC(dataset.Options{Seed: 33, Duration: 24 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	c := ds.Result.Chain
	svc := ds.Services["BTC.com"]

	// Part 1: how dark fees price. Quote the acceleration of an average
	// transaction against a hot market.
	tx := &chain.Tx{VSize: 250, Fee: 2_500} // 10 sat/vB
	tx.Inputs = []chain.TxIn{{Address: "user", Value: chain.BTC + tx.Fee}}
	tx.Outputs = []chain.TxOut{{Address: "merchant", Value: chain.BTC}}
	tx.ComputeID()
	var quotes []float64
	for i := 0; i < 1000; i++ {
		quotes = append(quotes, float64(svc.Quote(tx, 80))/float64(tx.Fee))
	}
	q := stats.Summarize(quotes)
	fmt.Printf("dark-fee quotes for a 10 sat/vB transaction, as multiples of its public fee:\n  %s\n", q)
	fmt.Println("  (the paper measured mean ≈566x, median ≈117x against BTC.com)")

	// Part 2: detect accelerated transactions in BTC.com's blocks from
	// position evidence alone. The index computes each block's position
	// analysis once, shared by all five thresholds.
	ix := index.Build(c, ds.Registry)
	fmt.Println("\nSPPE-threshold detector over BTC.com blocks:")
	rows := core.ValidateDetectorOnIndex(ix, "BTC.com",
		[]float64{100, 99, 90, 50, 1}, svc.IsAccelerated)
	t := report.NewTable("", "SPPE >=", "candidates", "oracle-confirmed", "precision %")
	for _, r := range rows {
		t.AddRow(r.MinSPPE, r.Candidates, r.Accelerated, r.Precision()*100)
	}
	if err := t.Render(logWriter{}); err != nil {
		log.Fatal(err)
	}

	// Part 3: the baseline — random transactions are essentially never
	// accelerated (the paper found 0 in a 1000-tx sample).
	sampled, accel := core.BaselineAcceleratedRateOnIndex(ix, "BTC.com", 17, svc.IsAccelerated)
	fmt.Printf("\nrandom-sample baseline: %d of %d accelerated (%.2f%%)\n",
		accel, sampled, float64(accel)*100/float64(sampled))
}

// logWriter adapts stdout for report rendering without importing os twice.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
