// P2P example: a live three-node relay network over real TCP sockets — a
// miniature of the paper's data-collection setup. A permissive observer
// (data set B's configuration) and a default observer (data set A's) peer
// with a relay; transactions gossip through, and the observers' differing
// admission policies produce differing views, exactly the effect the
// paper's ε-tightening compensates for.
//
//	go run ./examples/p2pnode
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/p2p"
	"chainaudit/internal/stats"
	"chainaudit/internal/workload"
)

func main() {
	// Relay in the middle, two observers at the edges, all over TCP.
	relay := p2p.NewNode("relay", 1)
	defaultObs := p2p.NewNode("observer-default", chain.MinRelayFeeRate) // data set A config
	permissive := p2p.NewNode("observer-permissive", 0)                  // data set B config
	defer relay.Close()
	defer defaultObs.Close()
	defer permissive.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go relay.ListenAndServe(l)
	for _, n := range []*p2p.Node{defaultObs, permissive} {
		if err := n.Dial(l.Addr().String()); err != nil {
			log.Fatal(err)
		}
	}

	// A user population submits transactions to the relay, including a few
	// below the default relay minimum.
	rng := stats.NewRNG(99)
	gen := workload.NewGenerator(rng, 50)
	now := time.Unix(1_600_000_000, 0)
	submitted, lowball := 0, 0
	for i := 0; i < 200; i++ {
		var tx *chain.Tx
		if i%40 == 13 {
			tx = gen.LowBallTx(now)
			lowball++
		} else {
			tx = gen.UserTx(now, 1)
		}
		// The relay itself accepts >= 1 sat/vB; submit low-ball txs at the
		// permissive node so they enter the network at all.
		target := relay
		if tx.FeeRate() < chain.MinRelayFeeRate {
			target = permissive
		}
		if err := target.SubmitTx(tx, now); err == nil {
			submitted++
		}
		now = now.Add(time.Second)
		// Pace submissions the way real users do; an instantaneous
		// 200-transaction burst is a stress test, not a workload.
		time.Sleep(time.Millisecond)
	}

	// Let gossip settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if permissive.Mempool(now).Count >= submitted-1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	ds := defaultObs.Mempool(now)
	ps := permissive.Mempool(now)
	fmt.Printf("submitted %d transactions (%d below the 1 sat/vB minimum)\n", submitted, lowball)
	fmt.Printf("default-config observer mempool:    %4d txs, %7d vbytes\n", ds.Count, ds.TotalVSize)
	fmt.Printf("permissive observer mempool:        %4d txs, %7d vbytes\n", ps.Count, ps.TotalVSize)
	fmt.Printf("difference (policy-dropped):        %4d txs\n", ps.Count-ds.Count)

	// Mine the permissive view into a block at the relay and watch the
	// mempools drain over the wire.
	var txs []*chain.Tx
	var fees chain.Amount
	for _, st := range ps.Txs {
		txs = append(txs, st.Tx)
		fees += st.Tx.Fee
	}
	cb := &chain.Tx{
		VSize:       120,
		Time:        now,
		Outputs:     []chain.TxOut{{Address: "pool", Value: chain.Subsidy(650_000) + fees}},
		CoinbaseTag: "/Example/",
	}
	cb.ComputeID()
	blk := &chain.Block{Height: 650_000, Time: now, Txs: append([]*chain.Tx{cb}, txs...)}
	blk.ComputeHash([32]byte{})
	if err := permissive.SubmitBlock(blk); err != nil {
		log.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if defaultObs.Mempool(now).Count == 0 && relay.Mempool(now).Count == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("\nblock %d (%d txs) propagated; mempools now: relay=%d default=%d permissive=%d\n",
		blk.Height, len(blk.Body()),
		relay.Mempool(now).Count, defaultObs.Mempool(now).Count, permissive.Mempool(now).Count)
}
