// Quickstart: simulate a small Bitcoin-like economy, then audit the chain
// for adherence to the fee-rate prioritization norms.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/index"
	"chainaudit/internal/report"
)

func main() {
	// Build a scaled-down analogue of the paper's data set C: a week of
	// blocks with the paper's pool roster and every deviant behaviour
	// planted (selfish prioritization, collusion, dark fees). Cached, so a
	// second run in the same process reuses the simulation.
	ds, err := dataset.Cached(dataset.BuilderC, dataset.Options{Seed: 7, Duration: 12 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	c := ds.Result.Chain
	fmt.Printf("simulated %d blocks carrying %d transactions\n\n", c.Len(), c.TxCount())

	// Build the shared audit index once — pool attribution, transaction
	// positions, and per-block PPE — and run every audit off it.
	aud := core.NewIndexedAuditor(index.Build(c, ds.Registry))

	// Norm II: how closely does intra-block order track the fee-rate norm?
	rep := aud.AuditPPE(core.AuditOptions{MinBlocks: 3})
	fmt.Printf("position prediction error: %s\n", rep.Overall)
	fmt.Println("(the paper's data set C: mean 2.65%, 80% of blocks under 4.03%)")
	fmt.Println()

	// Norms I+II, per pool and transaction owner: who accelerates whom?
	si, err := aud.AuditSelfInterest(core.AuditOptions{MinShare: 0.04})
	if err != nil {
		log.Fatal(err)
	}
	findings := si.Findings
	t := report.NewTable("significant differential prioritization (p < 0.001)",
		"owner", "prioritized by", "x", "y", "p_accel", "sppe")
	for _, f := range findings {
		r := f.Result
		t.AddRow(f.Owner, r.Pool, int(r.X), int(r.Y), r.AccelP, r.SPPE)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrows where owner == prioritized-by are selfish acceleration;")
	fmt.Println("cross rows are collusion (the paper found ViaBTC accelerating")
	fmt.Println("1THash&58Coin's and SlushPool's transactions).")
}
