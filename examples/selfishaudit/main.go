// Selfish-audit example: the full §5.2 pipeline on one pool — derive its
// self-interest transaction set from the chain alone (no ground truth),
// run the acceleration and deceleration tests, confirm with SPPE, and
// cross-check the windowed Fisher-combined variant from §5.1.3.
//
//	go run ./examples/selfishaudit [-pool ViaBTC]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/index"
	"chainaudit/internal/stats"
)

func main() {
	pool := flag.String("pool", "ViaBTC", "mining pool to audit")
	flag.Parse()

	ds, err := dataset.BuildC(dataset.Options{Seed: 21, Duration: 24 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	c := ds.Result.Chain
	reg := ds.Registry
	ix := index.Build(c, reg)

	// Step 1: find the pool's wallets from its coinbase outputs, then every
	// confirmed transaction touching them — exactly the paper's §5.2
	// methodology, using only public chain data. The index caches the
	// wallet derivation alongside the pool attribution.
	sets := ix.SelfInterestSets()
	set := sets[*pool]
	fmt.Printf("%s: %d self-interest transactions inferred from reward wallets\n", *pool, len(set))
	if len(set) == 0 {
		log.Fatalf("no self-interest transactions found for %q", *pool)
	}

	// Step 2: the one-sided binomial tests, over the prebuilt index.
	res, err := core.DifferentialTestEstimatedOnIndex(ix, *pool, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhash rate θ0 = %.4f (estimated from block share)\n", res.Theta0)
	fmt.Printf("c-blocks y = %d, mined by %s: x = %d (fair share would be ~%.1f)\n",
		res.Y, *pool, res.X, res.Theta0*float64(res.Y))
	fmt.Printf("acceleration test: p = %.3g (normal approx %.3g)\n", res.AccelP, res.AccelPNormal)
	fmt.Printf("deceleration test: p = %.3g\n", res.DecelP)

	// Step 3: the position evidence.
	fmt.Printf("SPPE within %s blocks: %+.1f%% over %d transactions\n", *pool, res.SPPE, res.SPPECount)

	switch {
	case res.SignificantAccel() && res.SPPE > 0:
		fmt.Printf("\nverdict: %s differentially ACCELERATES its own transactions\n", *pool)
	case res.SignificantDecel():
		fmt.Printf("\nverdict: %s differentially DECELERATES these transactions\n", *pool)
	default:
		fmt.Printf("\nverdict: no significant deviation at α = %g\n", stats.StrongSize)
	}

	// Step 4: robustness under drifting hash rates — split into windows and
	// combine with Fisher's method.
	win, err := core.WindowedDifferentialTest(c, reg, *pool, set, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwindowed check (%d windows, Fisher combined): accel p = %.3g, decel p = %.3g\n",
		len(win.Windows), win.AccelP, win.DecelP)
}
