// Stratum-pool example: the pool-internal side of the paper's §2.1 — a
// pool builds a GetBlockTemplate block template from its mempool, renders
// it down to Stratum jobs, and distributes work to miners over TCP. When
// the template changes (a new high-fee transaction arrives), workers are
// re-notified, exactly the GBT→Stratum flow the paper describes as the
// source of the ordering norms.
//
//	go run ./examples/stratumpool
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/gbt"
	"chainaudit/internal/mempool"
	"chainaudit/internal/stats"
	"chainaudit/internal/stratum"
	"chainaudit/internal/workload"
)

func main() {
	// The pool's mempool fills with user transactions.
	rng := stats.NewRNG(7)
	gen := workload.NewGenerator(rng, 100)
	pool := mempool.New(mempool.WithMinFeeRate(1))
	now := time.Unix(1_600_000_000, 0)
	for i := 0; i < 400; i++ {
		tx := gen.UserTx(now.Add(time.Duration(i)*time.Second), mempool.CongestionLow)
		_ = pool.Add(tx, tx.Time)
	}

	// Build the GBT template the job derives from.
	tpl := gbt.AncestorScore{}.Build(pool.Entries(), 100_000)
	fmt.Printf("template: %d txs, %d vbytes, %s in fees\n",
		len(tpl.Txs), tpl.VSize, tpl.TotalFee)

	// Stand up the Stratum server and point three workers at it.
	srv := stratum.NewServer()
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go srv.ListenAndServe(l)
	srv.SetJob(stratum.NewJob("epoch-1", 650_000, [32]byte{}, tpl.Txs, 10, true))

	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("rig-%d", i)
		w := stratum.NewWorker(name)
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Connect(conn); err != nil {
			log.Fatal(err)
		}
		// Wait for the job push, then grind.
		select {
		case <-w.Jobs():
		case <-time.After(5 * time.Second):
			log.Fatalf("%s: no job", name)
		}
		wg.Add(1)
		go func(w *stratum.Worker, name string) {
			defer wg.Done()
			defer w.Close()
			accepted, err := w.Mine(60_000)
			if err != nil {
				log.Printf("%s: %v", name, err)
				return
			}
			fmt.Printf("%s: %d shares accepted\n", name, accepted)
		}(w, name)
	}
	wg.Wait()

	// A fat-fee transaction arrives: rebuild the template and rotate jobs.
	rich := gen.UserTx(now.Add(time.Hour), mempool.CongestionHigh)
	_ = pool.Add(rich, rich.Time)
	tpl2 := gbt.AncestorScore{}.Build(pool.Entries(), 100_000)
	srv.SetJob(stratum.NewJob("epoch-2", 650_000, [32]byte{}, tpl2.Txs, 10, true))
	fmt.Printf("\nrotated to epoch-2 after new arrival (template now %d txs)\n", len(tpl2.Txs))

	// Pool-side accounting: this is how pools estimate worker hash rate.
	total := int64(0)
	for worker, shares := range srv.Shares() {
		fmt.Printf("worker %s credited %d shares\n", worker, shares)
		total += shares
	}
	fmt.Printf("total shares: %d (share difficulty 10 bits => ~%d hashes estimated)\n",
		total, total*1024)
	_ = chain.MaxBlockVSize
}
