module chainaudit

go 1.22
