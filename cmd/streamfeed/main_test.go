package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chainaudit/internal/dataset"
	"chainaudit/internal/serve"
)

// TestRecordReplayRoundTrip records a chain CSV as a stream, replays it into
// an in-process service, and checks the streamed data set audits
// byte-identically to the CSV loaded at startup — the smoke-stream invariant
// without the subprocess plumbing.
func TestRecordReplayRoundTrip(t *testing.T) {
	ds, err := dataset.Cached(dataset.BuilderC, dataset.Options{Seed: 11, Duration: 4 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "chain.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteChainCSV(f, ds.Result.Chain); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	streamPath := filepath.Join(dir, "stream.jsonl")
	var out bytes.Buffer
	if err := run([]string{"record", "-chain", csvPath, "-out", streamPath, "-batch", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ingest requests") {
		t.Errorf("record output = %q", out.String())
	}

	srv, err := serve.New(serve.Config{Chains: []serve.ChainSpec{{Name: "main", Path: csvPath}}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	out.Reset()
	if err := run([]string{"replay", "-in", streamPath, "-url", hs.URL, "-dataset", "live"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset live") {
		t.Errorf("replay output = %q", out.String())
	}

	get := func(target string) string {
		t.Helper()
		rr := httptest.NewRecorder()
		req := httptest.NewRequest("POST", target, nil)
		srv.Handler().ServeHTTP(rr, req)
		if rr.Code != 200 {
			t.Fatalf("%s = %d: %s", target, rr.Code, rr.Body.String())
		}
		return rr.Body.String()
	}
	for _, q := range []string{
		"/v1/audits/ppe?format=text&dataset=%s",
		"/v1/audits/lowfee?format=text&dataset=%s",
		"/v1/audits/ppe?format=text&window=24&dataset=%s",
	} {
		want := get(strings.Replace(q, "%s", "main", 1))
		got := get(strings.Replace(q, "%s", "live", 1))
		if got != want {
			t.Errorf("replayed stream diverged on %s:\n--- batch ---\n%s--- stream ---\n%s", q, want, got)
		}
	}

	// Replaying the same stream again collides with the existing heights and
	// reports the rejection instead of corrupting the data set.
	out.Reset()
	if err := run([]string{"replay", "-in", streamPath, "-url", hs.URL, "-dataset", "live"}, &out); err == nil {
		t.Error("duplicate replay accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"nonsense"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"record"}, &out); err == nil {
		t.Error("record without flags accepted")
	}
	if err := run([]string{"replay"}, &out); err == nil {
		t.Error("replay without flags accepted")
	}
}
