// Command streamfeed records a chain CSV as an ingest stream and replays
// recorded streams into a running chainauditd — the transport half of the
// streaming pipeline (DESIGN.md §11).
//
//	streamfeed record -chain chain.csv -out stream.jsonl [-batch 16] [-dataset live]
//	streamfeed replay -in stream.jsonl -url http://127.0.0.1:8347 [-dataset live]
//
// record converts each block to its ingest frame (serve.FrameBlock — the
// same schema POST /v1/ingest parses) and writes one IngestRequest per
// batch as a JSON line, each batch followed by a mempool snapshot carrying
// the batch transactions' own times as first-seen observations. replay
// POSTs each line to /v1/ingest in order and fails on the first rejected
// request, printing the applied watermark when done. Because the frames
// round-trip exactly, a recorded stream replayed into chainauditd audits
// byte-identically to loading the CSV at startup — `make smoke-stream`
// pins that end to end.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"chainaudit/internal/dataset"
	"chainaudit/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "streamfeed:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("want a mode: record or replay")
	}
	mode, rest := args[0], args[1:]
	switch mode {
	case "record":
		return record(rest, out)
	case "replay":
		return replay(rest, out)
	default:
		return fmt.Errorf("unknown mode %q (want record or replay)", mode)
	}
}

// record reads a chain CSV and writes the equivalent ingest stream: one
// IngestRequest JSON line per batch of blocks.
func record(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("streamfeed record", flag.ContinueOnError)
	chainPath := fs.String("chain", "", "chain CSV to record (required)")
	outPath := fs.String("out", "", "output JSONL stream path (required)")
	batch := fs.Int("batch", 16, "blocks per ingest request")
	name := fs.String("dataset", "live", "streaming data set name the frames target")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chainPath == "" || *outPath == "" {
		return fmt.Errorf("-chain and -out are required")
	}
	if *batch < 1 {
		*batch = 1
	}
	f, err := os.Open(*chainPath)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := dataset.ReadChainCSV(f)
	if err != nil {
		return err
	}
	w, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer w.Close()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	blocks := c.Blocks()
	lines := 0
	for i := 0; i < len(blocks); i += *batch {
		end := i + *batch
		if end > len(blocks) {
			end = len(blocks)
		}
		req := serve.IngestRequest{Dataset: *name}
		var snap serve.SnapshotFrame
		for _, b := range blocks[i:end] {
			req.Blocks = append(req.Blocks, serve.FrameBlock(b))
			snap.TimeNS = b.Time.UnixNano()
			snap.TipHeight = b.Height
			for _, tx := range b.Body() {
				snap.Txs = append(snap.Txs, serve.SnapshotTx{ID: tx.ID.String(), FirstSeenNS: tx.Time.UnixNano()})
			}
		}
		req.Mempool = []serve.SnapshotFrame{snap}
		if err := enc.Encode(&req); err != nil {
			return err
		}
		lines++
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d blocks as %d ingest requests -> %s\n", len(blocks), lines, *outPath)
	return w.Close()
}

// replay POSTs each recorded line to the service's ingest endpoint in
// order, failing on the first rejected request.
func replay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("streamfeed replay", flag.ContinueOnError)
	inPath := fs.String("in", "", "recorded JSONL stream (required)")
	url := fs.String("url", "http://127.0.0.1:8347", "chainauditd base URL")
	name := fs.String("dataset", "", "override the recorded data set name")
	timeout := fs.Duration("timeout", time.Minute, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()

	client := &http.Client{Timeout: *timeout}
	endpoint := strings.TrimSuffix(*url, "/") + "/v1/ingest"
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var (
		line, appended, snapshots int
		last                      serve.IngestResponse
	)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		line++
		if *name != "" {
			var req serve.IngestRequest
			if err := json.Unmarshal(raw, &req); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			req.Dataset = *name
			if raw, err = json.Marshal(&req); err != nil {
				return err
			}
		}
		resp, err := client.Post(endpoint, "application/json", bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &last); err != nil {
			return fmt.Errorf("line %d: bad response (%d): %s", line, resp.StatusCode, body)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("line %d: ingest rejected (%d): %s", line, resp.StatusCode, last.Error)
		}
		appended += last.Appended
		snapshots += last.Snapshots
	}
	if err := sc.Err(); err != nil {
		return err
	}
	height := int64(-1)
	if last.Height != nil {
		height = *last.Height
	}
	fmt.Fprintf(out, "replayed %d requests: %d blocks, %d snapshots, dataset %s at height %d (index %d)\n",
		line, appended, snapshots, last.Dataset, height, last.IndexLen)
	return nil
}
