// Command chainobserver drives the live half of the streaming pipeline
// (DESIGN.md §12): it replays a chain CSV through a two-node p2p network —
// a relay node gossiping transactions and blocks to a watcher node — and
// ships what the watcher observes into an audit target through
// internal/observer.
//
//	chainobserver -chain chain.csv [-url http://127.0.0.1:8347] [-dataset live]
//	              [-batch 16] [-record stream.jsonl] [-chaos spec] [-queue N]
//	              [-timeout d] [-retries n] [-backoff d] [-seed N] [-resume]
//	              [-inprocess] [-retain N] [-window N]
//
// By default batches ship over HTTP to a running chainauditd's POST
// /v1/ingest, with retry, seeded-jitter backoff, and idempotent
// redelivery; -record tees every shipped request to a JSONL stream in
// exactly the format `streamfeed replay` consumes, so a live run can be
// replayed afterwards and must audit byte-identically (`make smoke-live`
// pins that). -resume queries the service's recovered ingest watermark
// before feeding and skips batches it already holds — the restart half of
// the durable-streaming loop (`make smoke-crash` pins that end to end).
// -inprocess skips HTTP and applies the feed to an in-process incremental
// index instead, printing the windowed positional audit when done — the
// embedded-auditor deployment shape. -chaos wires an internal/faults plan
// into the relay link and the observer's shipping path: dropped and delayed
// gossip, duplicate deliveries, and watcher churn (with reconnect) all
// stress the feed while the audit result must stay equal to a clean replay
// of what was recorded.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/faults"
	"chainaudit/internal/index"
	"chainaudit/internal/observer"
	"chainaudit/internal/p2p"
	"chainaudit/internal/poolid"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chainobserver:", err)
		os.Exit(1)
	}
}

// feedClock is the injected timestamp source both nodes share: the feeder
// advances it along the replayed chain's own timeline so first-seen events
// carry chain time, not host time.
type feedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *feedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *feedClock) set(t time.Time) {
	c.mu.Lock()
	if t.After(c.t) {
		c.t = t
	}
	c.mu.Unlock()
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chainobserver", flag.ContinueOnError)
	chainPath := fs.String("chain", "", "chain CSV to feed through the p2p pair (required)")
	url := fs.String("url", "http://127.0.0.1:8347", "chainauditd base URL")
	name := fs.String("dataset", "live", "streaming data set name to ship into")
	batch := fs.Int("batch", 16, "blocks per shipped batch")
	record := fs.String("record", "", "tee every shipped request to this JSONL stream")
	chaos := fs.String("chaos", "", "fault-injection spec for the relay link and shipping path (see internal/faults)")
	queue := fs.Int("queue", 4096, "observer event queue depth")
	timeout := fs.Duration("timeout", 10*time.Second, "per-block propagation deadline")
	retries := fs.Int("retries", 0, "HTTP delivery attempts per batch (0 = sink default)")
	backoff := fs.Duration("backoff", 0, "initial HTTP retry backoff, doubling with seeded jitter (0 = sink default)")
	seed := fs.Uint64("seed", 0, "backoff jitter seed (0 = sink default)")
	resume := fs.Bool("resume", false, "sync the service's ingest watermark before feeding and skip covered batches")
	inprocess := fs.Bool("inprocess", false, "apply the feed to an in-process index instead of HTTP")
	retain := fs.Int("retain", 0, "in-process retention horizon in blocks (0 = unbounded)")
	window := fs.Int("window", 0, "in-process: audit window to print when done (0 = all retained)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chainPath == "" {
		return fmt.Errorf("-chain is required")
	}
	if *batch < 1 {
		*batch = 1
	}

	f, err := os.Open(*chainPath)
	if err != nil {
		return err
	}
	c, err := dataset.ReadChainCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	if c.Len() == 0 {
		return fmt.Errorf("chain %s is empty", *chainPath)
	}

	var plan *faults.Plan
	if *chaos != "" {
		if plan, err = faults.ParseSpec(*chaos); err != nil {
			return err
		}
	}

	// The network: relay gossips what "the chain" produces; watcher is the
	// observation vantage point the audit feed comes from. Admission is
	// fully permissive — the feed must carry the chain as-is, including the
	// low-fee inclusions the audits are hunting for.
	clk := &feedClock{t: c.Blocks()[0].Time}
	relay := p2p.NewNode("relay", 0)
	watcher := p2p.NewNode("watcher", 0)
	defer relay.Close()
	defer watcher.Close()
	relay.SetClock(clk.now)
	watcher.SetClock(clk.now)
	relay.SetFaults(plan.P2P(1))
	watcher.SetFaults(plan.P2P(2))
	src := observer.NewNodeSource(watcher, *queue)
	defer src.Close()
	p2p.ConnectPair(relay, watcher)

	// The sink stack, innermost out: HTTP or in-process, optionally teed
	// through a recorder.
	var (
		sink observer.Sink
		hs   *observer.HTTPSink
		ix   *index.BlockIndex
		win  *core.WindowAuditor
	)
	if *inprocess {
		opts := []index.Option{index.WithAppender(dataset.AppendLoose)}
		if *retain > 0 {
			opts = append(opts, index.WithRetention(*retain))
		}
		ix = index.NewIncremental(poolid.DefaultRegistry(), opts...)
		win = core.NewWindowAuditor(*retain)
		sink = &observer.IndexSink{Index: ix, Win: win}
	} else {
		hs = &observer.HTTPSink{
			URL:        *url,
			Dataset:    *name,
			Client:     &http.Client{Timeout: time.Minute},
			MaxRetries: *retries,
			Backoff:    *backoff,
			Seed:       *seed,
			Faults:     plan.P2P(3),
		}
		if *resume {
			wm, ok, err := hs.SyncWatermark(ctx)
			if err != nil {
				return fmt.Errorf("resume: %w", err)
			}
			if ok {
				fmt.Fprintf(out, "resuming dataset %s above recovered height %d\n", *name, wm)
			} else {
				fmt.Fprintf(out, "resuming dataset %s from scratch (no recovered watermark)\n", *name)
			}
		}
		sink = hs
	}
	if *record != "" {
		rf, err := os.Create(*record)
		if err != nil {
			return err
		}
		defer rf.Close()
		bw := bufio.NewWriter(rf)
		defer bw.Flush()
		sink = observer.NewRecordSink(bw, *name, sink)
	}

	// Feed the chain through the relay on its own goroutine while the
	// observer run drains the watcher's events; closing the source ends the
	// run with a final flush.
	feedErr := make(chan error, 1)
	reconnects := 0
	go func() {
		defer src.Close()
		feedErr <- feed(ctx, c, relay, watcher, clk, *timeout, &reconnects)
	}()

	stats, runErr := observer.Run(ctx, src, sink, observer.Config{BatchBlocks: *batch})
	ferr := <-feedErr
	if runErr != nil {
		return fmt.Errorf("observer run: %w", runErr)
	}
	if ferr != nil {
		return fmt.Errorf("feed: %w", ferr)
	}

	fmt.Fprintf(out, "observed %s", stats)
	if reconnects > 0 {
		fmt.Fprintf(out, ", %d churn reconnects", reconnects)
	}
	fmt.Fprintln(out)
	if hs != nil {
		if hs.Last.Dataset == "" {
			// Every batch was skipped against the synced watermark: the sink
			// never shipped, so there is no ingest response to report.
			fmt.Fprintf(out, "dataset %s already covered by the service's watermark\n", *name)
		} else {
			height := int64(-1)
			if hs.Last.Height != nil {
				height = *hs.Last.Height
			}
			fmt.Fprintf(out, "dataset %s at height %d (index %d)\n", hs.Last.Dataset, height, hs.Last.IndexLen)
		}
	}
	if win != nil {
		fmt.Fprintf(out, "in-process index: %d retained of %d ingested\n", ix.Len(), ix.Ingested())
		if err := core.WritePPESection(out, win.AuditPPE(*window, core.AuditOptions{})); err != nil {
			return err
		}
	}
	return nil
}

// feed replays the chain into the relay node on the chain's own timeline:
// body transactions gossip first, then the block, then the feeder waits for
// the watcher to hold the new tip before moving on. A block lost to
// injected faults falls back to direct submission at the watcher after the
// propagation deadline — a real deployment's "observer fetched the block
// from a second source" path. Churn (when injected) restarts the watcher
// and reconnects it.
func feed(ctx context.Context, c *chain.Chain, relay, watcher *p2p.Node, clk *feedClock, timeout time.Duration, reconnects *int) error {
	submitted := 0
	for _, b := range c.Blocks() {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, tx := range b.Body() {
			clk.set(tx.Time)
			if err := relay.SubmitTx(tx, tx.Time); err != nil {
				// Duplicates after churn-driven resubmission are expected; a
				// rejected fresh transaction is not worth killing the feed for
				// either — the block itself will still carry it.
				continue
			}
			submitted++
		}
		// Let gossip settle so the watcher's seen-log delta for this block
		// carries the transactions that preceded it; under drop faults some
		// never arrive, so this is a bounded wait, not a barrier.
		waitUntil(ctx, timeout/4, func() bool {
			return len(watcher.SeenLog()) >= submitted
		})
		clk.set(b.Time)
		if err := relay.SubmitBlock(b); err != nil {
			return fmt.Errorf("relay rejected block %d: %w", b.Height, err)
		}
		arrived := waitUntil(ctx, timeout, func() bool {
			return watcher.Mempool(clk.now()).TipHeight >= b.Height
		})
		if !arrived {
			// The gossip path lost the block; hand it to the watcher directly.
			if err := watcher.SubmitBlock(b); err != nil && !strings.Contains(err.Error(), "already known") {
				return fmt.Errorf("watcher rejected block %d: %w", b.Height, err)
			}
			if !waitUntil(ctx, timeout, func() bool {
				return watcher.Mempool(clk.now()).TipHeight >= b.Height
			}) {
				return fmt.Errorf("watcher never reached height %d", b.Height)
			}
		}
		if watcher.MaybeChurn() {
			p2p.ConnectPair(relay, watcher)
			*reconnects++
		}
	}
	return nil
}

// waitUntil polls cond until it holds, the deadline passes, or ctx is done.
func waitUntil(ctx context.Context, d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
	return cond()
}
