// Command chainobserver drives the live half of the streaming pipeline
// (DESIGN.md §12): it replays a chain CSV through a two-node p2p network —
// a relay node gossiping transactions and blocks to a watcher node — and
// ships what the watcher observes into an audit target through
// internal/observer.
//
//	chainobserver -chain chain.csv [-url http://127.0.0.1:8347] [-dataset live]
//	              [-batch 16] [-record stream.jsonl] [-chaos spec] [-queue N]
//	              [-timeout d] [-retries n] [-backoff d] [-seed N] [-resume]
//	              [-inprocess] [-retain N] [-window N]
//	              [-sources N] [-source-lag id=dur] [-source-chaos id=spec]
//	              [-source-seed id=N] [-source-minfee id=rate]
//
// By default batches ship over HTTP to a running chainauditd's POST
// /v1/ingest, with retry, seeded-jitter backoff, and idempotent
// redelivery; -record tees every shipped request to a JSONL stream in
// exactly the format `streamfeed replay` consumes, so a live run can be
// replayed afterwards and must audit byte-identically (`make smoke-live`
// pins that). -resume queries the service's recovered ingest watermark
// before feeding and skips batches it already holds — the restart half of
// the durable-streaming loop (`make smoke-crash` pins that end to end).
// -inprocess skips HTTP and applies the feed to an in-process incremental
// index instead, printing the windowed positional audit when done — the
// embedded-auditor deployment shape. -chaos wires an internal/faults plan
// into the relay link and the observer's shipping path: dropped and delayed
// gossip, duplicate deliveries, and watcher churn (with reconnect) all
// stress the feed while the audit result must stay equal to a clean replay
// of what was recorded.
//
// -sources N (N > 1) runs N independent observation pipelines — each its
// own relay/watcher pair, clock, and fault plan — all feeding one streaming
// set under distinct source IDs s1..sN (DESIGN.md §14). Over HTTP each
// source ships through POST /v2/ingest with its ID as the request's source
// attribution; in-process all sources share one index behind a
// covered-height trim (the in-process mirror of the service's idempotent
// redelivery), and the run ends with the cross-source divergence audit next
// to the positional audit. The repeatable -source-* flags override one
// source's knobs by ID: -source-lag plants a deterministic observation lag
// (the divergence audit's ground truth), -source-chaos replaces the global
// -chaos spec for that source, -source-seed and -source-minfee tune its
// backoff jitter and admission threshold.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/faults"
	"chainaudit/internal/index"
	"chainaudit/internal/observer"
	"chainaudit/internal/p2p"
	"chainaudit/internal/poolid"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chainobserver:", err)
		os.Exit(1)
	}
}

// feedClock is the injected timestamp source both nodes share: the feeder
// advances it along the replayed chain's own timeline so first-seen events
// carry chain time, not host time.
type feedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *feedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *feedClock) set(t time.Time) {
	c.mu.Lock()
	if t.After(c.t) {
		c.t = t
	}
	c.mu.Unlock()
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chainobserver", flag.ContinueOnError)
	chainPath := fs.String("chain", "", "chain CSV to feed through the p2p pair (required)")
	url := fs.String("url", "http://127.0.0.1:8347", "chainauditd base URL")
	name := fs.String("dataset", "live", "streaming data set name to ship into")
	batch := fs.Int("batch", 16, "blocks per shipped batch")
	record := fs.String("record", "", "tee every shipped request to this JSONL stream")
	chaos := fs.String("chaos", "", "fault-injection spec for the relay link and shipping path (see internal/faults)")
	queue := fs.Int("queue", 4096, "observer event queue depth")
	timeout := fs.Duration("timeout", 10*time.Second, "per-block propagation deadline")
	retries := fs.Int("retries", 0, "HTTP delivery attempts per batch (0 = sink default)")
	backoff := fs.Duration("backoff", 0, "initial HTTP retry backoff, doubling with seeded jitter (0 = sink default)")
	seed := fs.Uint64("seed", 0, "backoff jitter seed (0 = sink default)")
	resume := fs.Bool("resume", false, "sync the service's ingest watermark before feeding and skip covered batches")
	inprocess := fs.Bool("inprocess", false, "apply the feed to an in-process index instead of HTTP")
	retain := fs.Int("retain", 0, "in-process retention horizon in blocks (0 = unbounded)")
	window := fs.Int("window", 0, "in-process: audit window to print when done (0 = all retained)")
	sources := fs.Int("sources", 1, "number of concurrent observation sources (IDs s1..sN; >1 ships with v2 source attribution)")
	srcLag := map[string]time.Duration{}
	fs.Func("source-lag", "per-source observation lag as id=duration (e.g. s2=30s; repeatable)", func(v string) error {
		id, val, err := splitSourceFlag(v)
		if err != nil {
			return err
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return err
		}
		srcLag[id] = d
		return nil
	})
	srcChaos := map[string]string{}
	fs.Func("source-chaos", "per-source fault spec as id=spec, overriding -chaos for that source (repeatable)", func(v string) error {
		id, val, err := splitSourceFlag(v)
		if err != nil {
			return err
		}
		srcChaos[id] = val
		return nil
	})
	srcSeed := map[string]uint64{}
	fs.Func("source-seed", "per-source backoff jitter seed as id=N (repeatable)", func(v string) error {
		id, val, err := splitSourceFlag(v)
		if err != nil {
			return err
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return err
		}
		srcSeed[id] = n
		return nil
	})
	srcMinFee := map[string]chain.SatPerVByte{}
	fs.Func("source-minfee", "per-source watcher admission threshold as id=rate in sat/vB (repeatable)", func(v string) error {
		id, val, err := splitSourceFlag(v)
		if err != nil {
			return err
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return err
		}
		srcMinFee[id] = chain.SatPerVByte(rate)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chainPath == "" {
		return fmt.Errorf("-chain is required")
	}
	if *batch < 1 {
		*batch = 1
	}
	if *sources < 1 {
		return fmt.Errorf("-sources must be at least 1")
	}
	if *sources == 1 && (len(srcLag)+len(srcChaos)+len(srcSeed)+len(srcMinFee)) > 0 {
		return fmt.Errorf("per-source flags require -sources > 1")
	}
	if *sources > 1 {
		if *record != "" {
			return fmt.Errorf("-record is single-source only: record each source in its own run")
		}
		for _, m := range []map[string]bool{sourceIDs(srcLag), sourceIDs(srcChaos), sourceIDs(srcSeed), sourceIDs(srcMinFee)} {
			for id := range m {
				if !validSourceID(id, *sources) {
					return fmt.Errorf("unknown source %q: IDs are s1..s%d", id, *sources)
				}
			}
		}
	}

	f, err := os.Open(*chainPath)
	if err != nil {
		return err
	}
	c, err := dataset.ReadChainCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	if c.Len() == 0 {
		return fmt.Errorf("chain %s is empty", *chainPath)
	}

	if *sources > 1 {
		return runMulti(ctx, out, c, multiConfig{
			sources:   *sources,
			url:       *url,
			dataset:   *name,
			batch:     *batch,
			chaos:     *chaos,
			queue:     *queue,
			timeout:   *timeout,
			retries:   *retries,
			backoff:   *backoff,
			seed:      *seed,
			resume:    *resume,
			inprocess: *inprocess,
			retain:    *retain,
			window:    *window,
			lag:       srcLag,
			chaosBy:   srcChaos,
			seedBy:    srcSeed,
			minFeeBy:  srcMinFee,
		})
	}

	var plan *faults.Plan
	if *chaos != "" {
		if plan, err = faults.ParseSpec(*chaos); err != nil {
			return err
		}
	}

	// The network: relay gossips what "the chain" produces; watcher is the
	// observation vantage point the audit feed comes from. Admission is
	// fully permissive — the feed must carry the chain as-is, including the
	// low-fee inclusions the audits are hunting for.
	clk := &feedClock{t: c.Blocks()[0].Time}
	relay := p2p.NewNode("relay", 0)
	watcher := p2p.NewNode("watcher", 0)
	defer relay.Close()
	defer watcher.Close()
	relay.SetClock(clk.now)
	watcher.SetClock(clk.now)
	relay.SetFaults(plan.P2P(1))
	watcher.SetFaults(plan.P2P(2))
	src := observer.NewNodeSource(watcher, *queue)
	defer src.Close()
	p2p.ConnectPair(relay, watcher)

	// The sink stack, innermost out: HTTP or in-process, optionally teed
	// through a recorder.
	var (
		sink observer.Sink
		hs   *observer.HTTPSink
		ix   *index.BlockIndex
		win  *core.WindowAuditor
	)
	if *inprocess {
		opts := []index.Option{index.WithAppender(dataset.AppendLoose)}
		if *retain > 0 {
			opts = append(opts, index.WithRetention(*retain))
		}
		ix = index.NewIncremental(poolid.DefaultRegistry(), opts...)
		win = core.NewWindowAuditor(*retain)
		sink = &observer.IndexSink{Index: ix, Win: win}
	} else {
		hs = &observer.HTTPSink{
			URL:        *url,
			Dataset:    *name,
			Client:     &http.Client{Timeout: time.Minute},
			MaxRetries: *retries,
			Backoff:    *backoff,
			Seed:       *seed,
			Faults:     plan.P2P(3),
		}
		if *resume {
			wm, ok, err := hs.SyncWatermark(ctx)
			if err != nil {
				return fmt.Errorf("resume: %w", err)
			}
			if ok {
				fmt.Fprintf(out, "resuming dataset %s above recovered height %d\n", *name, wm)
			} else {
				fmt.Fprintf(out, "resuming dataset %s from scratch (no recovered watermark)\n", *name)
			}
		}
		sink = hs
	}
	if *record != "" {
		rf, err := os.Create(*record)
		if err != nil {
			return err
		}
		defer rf.Close()
		bw := bufio.NewWriter(rf)
		defer bw.Flush()
		sink = observer.NewRecordSink(bw, *name, sink)
	}

	// Feed the chain through the relay on its own goroutine while the
	// observer run drains the watcher's events; closing the source ends the
	// run with a final flush.
	feedErr := make(chan error, 1)
	reconnects := 0
	go func() {
		defer src.Close()
		feedErr <- feed(ctx, c, relay, watcher, clk, *timeout, &reconnects)
	}()

	stats, runErr := observer.Run(ctx, src, sink, observer.Config{BatchBlocks: *batch})
	ferr := <-feedErr
	if runErr != nil {
		return fmt.Errorf("observer run: %w", runErr)
	}
	if ferr != nil {
		return fmt.Errorf("feed: %w", ferr)
	}

	fmt.Fprintf(out, "observed %s", stats)
	if reconnects > 0 {
		fmt.Fprintf(out, ", %d churn reconnects", reconnects)
	}
	fmt.Fprintln(out)
	if hs != nil {
		if hs.Last.Dataset == "" {
			// Every batch was skipped against the synced watermark: the sink
			// never shipped, so there is no ingest response to report.
			fmt.Fprintf(out, "dataset %s already covered by the service's watermark\n", *name)
		} else {
			height := int64(-1)
			if hs.Last.Height != nil {
				height = *hs.Last.Height
			}
			fmt.Fprintf(out, "dataset %s at height %d (index %d)\n", hs.Last.Dataset, height, hs.Last.IndexLen)
		}
	}
	if win != nil {
		fmt.Fprintf(out, "in-process index: %d retained of %d ingested\n", ix.Len(), ix.Ingested())
		if err := core.WritePPESection(out, win.AuditPPE(*window, core.AuditOptions{})); err != nil {
			return err
		}
	}
	return nil
}

// feed replays the chain into the relay node on the chain's own timeline:
// body transactions gossip first, then the block, then the feeder waits for
// the watcher to hold the new tip before moving on. A block lost to
// injected faults falls back to direct submission at the watcher after the
// propagation deadline — a real deployment's "observer fetched the block
// from a second source" path. Churn (when injected) restarts the watcher
// and reconnects it.
func feed(ctx context.Context, c *chain.Chain, relay, watcher *p2p.Node, clk *feedClock, timeout time.Duration, reconnects *int) error {
	submitted := 0
	for _, b := range c.Blocks() {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, tx := range b.Body() {
			clk.set(tx.Time)
			if err := relay.SubmitTx(tx, tx.Time); err != nil {
				// Duplicates after churn-driven resubmission are expected; a
				// rejected fresh transaction is not worth killing the feed for
				// either — the block itself will still carry it.
				continue
			}
			submitted++
		}
		// Let gossip settle so the watcher's seen-log delta for this block
		// carries the transactions that preceded it; under drop faults some
		// never arrive, so this is a bounded wait, not a barrier.
		waitUntil(ctx, timeout/4, func() bool {
			return len(watcher.SeenLog()) >= submitted
		})
		clk.set(b.Time)
		if err := relay.SubmitBlock(b); err != nil {
			return fmt.Errorf("relay rejected block %d: %w", b.Height, err)
		}
		arrived := waitUntil(ctx, timeout, func() bool {
			return watcher.Mempool(clk.now()).TipHeight >= b.Height
		})
		if !arrived {
			// The gossip path lost the block; hand it to the watcher directly.
			if err := watcher.SubmitBlock(b); err != nil && !strings.Contains(err.Error(), "already known") {
				return fmt.Errorf("watcher rejected block %d: %w", b.Height, err)
			}
			if !waitUntil(ctx, timeout, func() bool {
				return watcher.Mempool(clk.now()).TipHeight >= b.Height
			}) {
				return fmt.Errorf("watcher never reached height %d", b.Height)
			}
		}
		if watcher.MaybeChurn() {
			p2p.ConnectPair(relay, watcher)
			*reconnects++
		}
	}
	return nil
}

// splitSourceFlag parses one repeatable per-source flag value ("id=value").
func splitSourceFlag(v string) (id, val string, err error) {
	id, val, ok := strings.Cut(v, "=")
	if !ok || id == "" || val == "" {
		return "", "", fmt.Errorf("want id=value, got %q", v)
	}
	return id, val, nil
}

// sourceIDs collects a per-source override map's keys for ID validation.
func sourceIDs[V any](m map[string]V) map[string]bool {
	ids := make(map[string]bool, len(m))
	for id := range m {
		ids[id] = true
	}
	return ids
}

// validSourceID reports whether id names one of the n sources (s1..sN).
func validSourceID(id string, n int) bool {
	if len(id) < 2 || id[0] != 's' {
		return false
	}
	i, err := strconv.Atoi(id[1:])
	return err == nil && i >= 1 && i <= n
}

// multiConfig carries the shared knobs plus the per-source overrides into
// runMulti.
type multiConfig struct {
	sources   int
	url       string
	dataset   string
	batch     int
	chaos     string
	queue     int
	timeout   time.Duration
	retries   int
	backoff   time.Duration
	seed      uint64
	resume    bool
	inprocess bool
	retain    int
	window    int
	lag       map[string]time.Duration
	chaosBy   map[string]string
	seedBy    map[string]uint64
	minFeeBy  map[string]chain.SatPerVByte
}

// sharedCover is the covered-height watermark all in-process source sinks
// ratchet under one lock: every source replays the same chain, so block
// frames arrive up to N times, and only the first delivery of each height
// may append. This is the in-process mirror of the HTTP path's idempotent
// covered-rejection trim — safe because each source delivers blocks in
// increasing order, so a source's next un-trimmed block is never more than
// one above the shared watermark.
type sharedCover struct {
	mu      sync.Mutex
	covered int64
}

// sharedIndexSink serializes one source's batches into the shared index:
// under the shared lock it trims blocks a sibling already appended, applies
// the remainder (snapshots always — each source's first-seen observations
// land in the per-source ledger under its own attribution), and advances
// the watermark.
type sharedIndexSink struct {
	cover *sharedCover
	sink  *observer.IndexSink
}

func (s *sharedIndexSink) Apply(ctx context.Context, b *observer.Batch) error {
	s.cover.mu.Lock()
	defer s.cover.mu.Unlock()
	trimmed := *b
	trimmed.Blocks = nil
	top := s.cover.covered
	for _, blk := range b.Blocks {
		if blk.Height > s.cover.covered {
			trimmed.Blocks = append(trimmed.Blocks, blk)
			if blk.Height > top {
				top = blk.Height
			}
		}
	}
	if err := s.sink.Apply(ctx, &trimmed); err != nil {
		return err
	}
	s.cover.covered = top
	return nil
}

// sourceResult is one pipeline's outcome, reported in ID order.
type sourceResult struct {
	id         string
	stats      *observer.Stats
	reconnects int
	hs         *observer.HTTPSink
	err        error
}

// runMulti drives cfg.sources concurrent observation pipelines over the
// same chain, each a full relay/watcher pair with its own clock, fault
// plan, and sink, all feeding one streaming set under distinct source IDs.
func runMulti(ctx context.Context, out io.Writer, c *chain.Chain, cfg multiConfig) error {
	var (
		ix    *index.BlockIndex
		win   *core.WindowAuditor
		cover *sharedCover
	)
	if cfg.inprocess {
		opts := []index.Option{index.WithAppender(dataset.AppendLoose)}
		if cfg.retain > 0 {
			opts = append(opts, index.WithRetention(cfg.retain))
		}
		ix = index.NewIncremental(poolid.DefaultRegistry(), opts...)
		win = core.NewWindowAuditor(cfg.retain)
		cover = &sharedCover{covered: -1}
	}

	results := make([]sourceResult, cfg.sources)
	var wg sync.WaitGroup
	for i := 0; i < cfg.sources; i++ {
		id := fmt.Sprintf("s%d", i+1)
		results[i] = sourceResult{id: id}

		spec := cfg.chaos
		if s, ok := cfg.chaosBy[id]; ok {
			spec = s
		}
		var plan *faults.Plan
		if spec != "" {
			p, err := faults.ParseSpec(spec)
			if err != nil {
				return fmt.Errorf("source %s: %w", id, err)
			}
			plan = p
		}

		clk := &feedClock{t: c.Blocks()[0].Time}
		relay := p2p.NewNode(id+"-relay", 0)
		watcher := p2p.NewNode(id+"-watcher", cfg.minFeeBy[id])
		defer relay.Close()
		defer watcher.Close()
		relay.SetClock(clk.now)
		watcher.SetClock(clk.now)
		relay.SetFaults(plan.P2P(1))
		watcher.SetFaults(plan.P2P(2))
		ns := observer.NewNodeSource(watcher, cfg.queue)
		defer ns.Close()
		p2p.ConnectPair(relay, watcher)

		var src observer.Source = ns
		if lag := cfg.lag[id]; lag != 0 {
			src = &observer.LagSource{Src: ns, Lag: lag}
		}

		var sink observer.Sink
		if cfg.inprocess {
			sink = &sharedIndexSink{cover: cover, sink: &observer.IndexSink{Index: ix, Win: win, Source: id}}
		} else {
			seed := cfg.seedBy[id]
			if seed == 0 {
				seed = cfg.seed
			}
			hs := &observer.HTTPSink{
				URL:        cfg.url,
				Dataset:    cfg.dataset,
				Source:     id,
				Client:     &http.Client{Timeout: time.Minute},
				MaxRetries: cfg.retries,
				Backoff:    cfg.backoff,
				Seed:       seed,
				Faults:     plan.P2P(3),
			}
			if cfg.resume {
				wm, ok, err := hs.SyncWatermark(ctx)
				if err != nil {
					return fmt.Errorf("source %s resume: %w", id, err)
				}
				if ok {
					fmt.Fprintf(out, "source %s resuming dataset %s above recovered height %d\n", id, cfg.dataset, wm)
				} else {
					fmt.Fprintf(out, "source %s resuming dataset %s from scratch (no recovered watermark)\n", id, cfg.dataset)
				}
			}
			results[i].hs = hs
			sink = hs
		}

		wg.Add(1)
		go func(r *sourceResult, relay, watcher *p2p.Node, ns *observer.NodeSource, src observer.Source, sink observer.Sink, clk *feedClock) {
			defer wg.Done()
			feedErr := make(chan error, 1)
			go func() {
				defer ns.Close()
				feedErr <- feed(ctx, c, relay, watcher, clk, cfg.timeout, &r.reconnects)
			}()
			stats, runErr := observer.Run(ctx, src, sink, observer.Config{BatchBlocks: cfg.batch})
			ferr := <-feedErr
			r.stats = stats
			if runErr != nil {
				r.err = fmt.Errorf("observer run: %w", runErr)
			} else if ferr != nil {
				r.err = fmt.Errorf("feed: %w", ferr)
			}
		}(&results[i], relay, watcher, ns, src, sink, clk)
	}
	wg.Wait()

	for i := range results {
		r := &results[i]
		if r.err != nil {
			return fmt.Errorf("source %s: %w", r.id, r.err)
		}
		fmt.Fprintf(out, "source %s: observed %s", r.id, r.stats)
		if r.reconnects > 0 {
			fmt.Fprintf(out, ", %d churn reconnects", r.reconnects)
		}
		fmt.Fprintln(out)
		if r.hs != nil {
			if r.hs.Last.Dataset == "" {
				fmt.Fprintf(out, "source %s: dataset %s already covered by the service's watermark\n", r.id, cfg.dataset)
			} else {
				height := int64(-1)
				if r.hs.Last.Height != nil {
					height = *r.hs.Last.Height
				}
				fmt.Fprintf(out, "source %s: dataset %s at height %d (index %d)\n", r.id, r.hs.Last.Dataset, height, r.hs.Last.IndexLen)
			}
		}
	}
	if win != nil {
		fmt.Fprintf(out, "in-process index: %d retained of %d ingested\n", ix.Len(), ix.Ingested())
		if err := core.WritePPESection(out, win.AuditPPE(cfg.window, core.AuditOptions{})); err != nil {
			return err
		}
		if err := core.WriteDivergenceSection(out, core.DivergenceAudit(ix.SourceSeenTimes(), core.DivergenceOptions{})); err != nil {
			return err
		}
	}
	return nil
}

// waitUntil polls cond until it holds, the deadline passes, or ctx is done.
func waitUntil(ctx context.Context, d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
	return cond()
}
