package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/poolid"
	"chainaudit/internal/serve"
)

// fixtureCSV writes the cached BuilderC chain as a CSV and returns its path
// plus the round-tripped chain (the batch reference).
func fixtureCSV(t *testing.T) (string, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Cached(dataset.BuilderC, dataset.Options{Seed: 11, Duration: 4 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chain.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteChainCSV(f, ds.Result.Chain); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

// TestLiveFeedShipsAndRecords is the smoke-live invariant without the
// subprocess plumbing: a live p2p feed shipped into chainauditd must audit
// byte-identically to the CSV loaded at startup, and replaying the run's
// own recording must land on the same bytes again.
func TestLiveFeedShipsAndRecords(t *testing.T) {
	csvPath, _ := fixtureCSV(t)
	srv, err := serve.New(serve.Config{Chains: []serve.ChainSpec{{Name: "main", Path: csvPath}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	streamPath := filepath.Join(t.TempDir(), "stream.jsonl")
	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-chain", csvPath, "-url", ts.URL, "-dataset", "live",
		"-record", streamPath, "-batch", "7", "-timeout", "5s",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "observed ") || !strings.Contains(out.String(), "dataset live at height") {
		t.Errorf("driver output = %q", out.String())
	}

	// Replay the recording verbatim into a second streaming set.
	rf, err := os.Open(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	sc := bufio.NewScanner(rf)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	lines := 0
	for sc.Scan() {
		var req serve.IngestRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			t.Fatalf("recorded line %d does not parse: %v", lines+1, err)
		}
		req.Dataset = "replayed"
		raw, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay line %d rejected (%d): %s", lines+1, resp.StatusCode, body)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("recording is empty")
	}

	get := func(target string) string {
		t.Helper()
		rr := httptest.NewRecorder()
		req := httptest.NewRequest("POST", target, nil)
		srv.Handler().ServeHTTP(rr, req)
		if rr.Code != 200 {
			t.Fatalf("%s = %d: %s", target, rr.Code, rr.Body.String())
		}
		return rr.Body.String()
	}
	for _, q := range []string{
		"/v1/audits/ppe?format=text&dataset=%s",
		"/v1/audits/lowfee?format=text&dataset=%s",
		"/v1/audits/ppe?format=text&window=16&dataset=%s",
	} {
		want := get(strings.Replace(q, "%s", "main", 1))
		live := get(strings.Replace(q, "%s", "live", 1))
		replayed := get(strings.Replace(q, "%s", "replayed", 1))
		if live != want {
			t.Errorf("live feed diverged from batch on %s:\n--- batch ---\n%s--- live ---\n%s", q, want, live)
		}
		if replayed != live {
			t.Errorf("replay of the recording diverged from the live run on %s", q)
		}
	}
}

// TestInProcessWindowMatchesBatch runs the embedded-auditor shape: the feed
// applies to an in-process retained index and the printed windowed audit
// must be byte-identical to the batch auditor over the chain suffix.
func TestInProcessWindowMatchesBatch(t *testing.T) {
	csvPath, _ := fixtureCSV(t)
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dataset.ReadChainCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	const retain = 8
	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-chain", csvPath, "-inprocess", "-retain", "8", "-window", "8", "-timeout", "5s",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "8 retained of") {
		t.Errorf("missing retention summary in %q", out.String())
	}

	batch := &core.Auditor{Chain: c.Suffix(retain), Registry: poolid.DefaultRegistry()}
	var want bytes.Buffer
	if err := core.WritePPESection(&want, batch.AuditPPE(core.AuditOptions{})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), want.String()) {
		t.Errorf("windowed audit diverged from batch suffix:\n--- want ---\n%s--- got ---\n%s", want.String(), out.String())
	}
}

// TestChaosFeedStillLands drops gossip and churns the watcher; the direct
// fallback path must still land every block, and the positional audit is
// unchanged (lost gossip costs first-seen coverage, never blocks).
func TestChaosFeedStillLands(t *testing.T) {
	csvPath, _ := fixtureCSV(t)
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dataset.ReadChainCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-chain", csvPath, "-inprocess", "-timeout", "500ms",
		"-chaos", "seed=3,p2p.drop=0.15,churn=0.05",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	batch := &core.Auditor{Chain: c, Registry: poolid.DefaultRegistry()}
	var want bytes.Buffer
	if err := core.WritePPESection(&want, batch.AuditPPE(core.AuditOptions{})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), want.String()) {
		t.Errorf("chaos feed diverged from batch:\n--- want ---\n%s--- got ---\n%s", want.String(), out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	ctx := context.Background()
	if err := run(ctx, nil, &out); err == nil {
		t.Error("missing -chain accepted")
	}
	if err := run(ctx, []string{"-chain", "/nonexistent.csv"}, &out); err == nil {
		t.Error("missing chain file accepted")
	}
	csvPath, _ := fixtureCSV(t)
	if err := run(ctx, []string{"-chain", csvPath, "-chaos", "bogus"}, &out); err == nil {
		t.Error("malformed chaos spec accepted")
	}
}
