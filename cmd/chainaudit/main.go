// Command chainaudit runs the paper's audit pipeline over a chain CSV
// (as produced by cmd/gendata or dataset.WriteChainCSV):
//
//	chainaudit -chain chain.csv [-minshare 0.04] [-ppe] [-selfinterest]
//	           [-lowfee] [-darkfee pool] [-sppe thr] [-scam address]
//	           [-window n]
//
// With no analysis flags, the PPE report, the self-interest audit, and the
// norm III census all run. -scam tests differential treatment of all
// transactions touching an address; -window adds the Fisher-combined
// windowed variant to the self-interest findings.
//
// Every audit goes through core.Auditor's AuditOptions API and the shared
// section renderers in internal/core; chainauditd serves the same audits
// over HTTP with byte-identical text output (see internal/serve).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chainaudit:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chainaudit", flag.ContinueOnError)
	chainPath := fs.String("chain", "", "chain CSV to audit (required)")
	minShare := fs.Float64("minshare", core.DefaultMinShare, "minimum pool share for differential tests")
	doPPE := fs.Bool("ppe", false, "run the PPE (norm II) report")
	doSelf := fs.Bool("selfinterest", false, "run the self-interest differential audit")
	doLowFee := fs.Bool("lowfee", false, "run the norm III low-fee census")
	darkPool := fs.String("darkfee", "", "scan this pool's blocks for SPPE-flagged (dark-fee) transactions")
	sppeThr := fs.Float64("sppe", core.DefaultSPPE, "SPPE threshold for -darkfee")
	scamAddr := fs.String("scam", "", "run the differential test over all transactions touching this address")
	windows := fs.Int("window", 0, "additionally run the Fisher-combined windowed self-interest test with N windows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chainPath == "" {
		return fmt.Errorf("-chain is required")
	}
	f, err := os.Open(*chainPath)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := dataset.ReadChainCSV(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %d blocks, %d transactions\n\n", c.Len(), c.TxCount())

	all := !*doPPE && !*doSelf && !*doLowFee && *darkPool == "" && *scamAddr == ""
	aud := core.NewAuditor(c)
	opts := core.AuditOptions{MinShare: *minShare, Windows: *windows, SPPE: *sppeThr}
	// The flags' historical semantics: an explicit 0 means "no threshold",
	// which AuditOptions spells as a negative value.
	if *minShare <= 0 {
		opts.MinShare = -1
	}
	if *sppeThr <= 0 {
		opts.SPPE = -1
	}

	if all || *doPPE {
		if err := core.WritePPESection(out, aud.AuditPPE(opts)); err != nil {
			return err
		}
	}
	if all || *doSelf {
		rep, err := aud.AuditSelfInterest(opts)
		if err != nil {
			return err
		}
		if err := core.WriteSelfInterestSection(out, rep); err != nil {
			return err
		}
	}
	if *scamAddr != "" {
		set := core.TouchingAddress(c, chain.Address(*scamAddr))
		var rows []core.DifferentialResult
		if len(set) > 0 {
			if rows, err = aud.AuditScam(set, opts); err != nil {
				return err
			}
		}
		if err := core.WriteScamSection(out, *scamAddr, len(set), rows); err != nil {
			return err
		}
	}
	if all || *doLowFee {
		if err := core.WriteLowFeeSection(out, aud.AuditLowFee(opts)); err != nil {
			return err
		}
	}
	if *darkPool != "" {
		cands := aud.AuditDarkFee(*darkPool, opts)
		if err := core.WriteDarkFeeSection(out, *darkPool, *sppeThr, cands); err != nil {
			return err
		}
	}
	return nil
}
