// Command chainaudit runs the paper's audit pipeline over a chain CSV
// (as produced by cmd/gendata or dataset.WriteChainCSV):
//
//	chainaudit -chain chain.csv [-minshare 0.04] [-ppe] [-selfinterest]
//	           [-lowfee] [-darkfee pool] [-sppe thr] [-scam address]
//	           [-window n]
//
// With no analysis flags, the PPE report, the self-interest audit, and the
// norm III census all run. -scam tests differential treatment of all
// transactions touching an address; -window adds the Fisher-combined
// windowed variant to the self-interest findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/poolid"
	"chainaudit/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chainaudit:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chainaudit", flag.ContinueOnError)
	chainPath := fs.String("chain", "", "chain CSV to audit (required)")
	minShare := fs.Float64("minshare", 0.04, "minimum pool share for differential tests")
	doPPE := fs.Bool("ppe", false, "run the PPE (norm II) report")
	doSelf := fs.Bool("selfinterest", false, "run the self-interest differential audit")
	doLowFee := fs.Bool("lowfee", false, "run the norm III low-fee census")
	darkPool := fs.String("darkfee", "", "scan this pool's blocks for SPPE-flagged (dark-fee) transactions")
	sppeThr := fs.Float64("sppe", 99, "SPPE threshold for -darkfee")
	scamAddr := fs.String("scam", "", "run the differential test over all transactions touching this address")
	windows := fs.Int("window", 0, "additionally run the Fisher-combined windowed self-interest test with N windows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chainPath == "" {
		return fmt.Errorf("-chain is required")
	}
	f, err := os.Open(*chainPath)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := dataset.ReadChainCSV(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %d blocks, %d transactions\n\n", c.Len(), c.TxCount())

	all := !*doPPE && !*doSelf && !*doLowFee && *darkPool == "" && *scamAddr == ""
	aud := core.NewAuditor(c)

	if all || *doPPE {
		rep := aud.PPEReport(5)
		fmt.Fprintf(out, "PPE overall: %s\n", rep.Overall)
		t := report.NewTable("PPE by pool", report.SummaryColumns("pool")...)
		for _, pool := range rep.SortedPools() {
			report.SummaryRow(t, pool, rep.PerPool[pool])
		}
		if err := t.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || *doSelf {
		findings, _, err := aud.SelfInterestAudit(*minShare)
		if err != nil {
			return err
		}
		t := report.NewTable("Self-interest differential prioritization (p < 0.001)",
			"owner", "pool", "theta0", "x", "y", "p_accel", "q_accel", "p_decel", "sppe")
		for _, fdg := range findings {
			r := fdg.Result
			t.AddRow(fdg.Owner, r.Pool, r.Theta0, int(r.X), int(r.Y), r.AccelP, fdg.QAccel, r.DecelP, r.SPPE)
		}
		if len(findings) == 0 {
			fmt.Fprintln(out, "self-interest audit: no significant deviations")
		} else if err := t.Render(out); err != nil {
			return err
		}
		if *windows > 1 && len(findings) > 0 {
			w := report.NewTable(fmt.Sprintf("Fisher-combined over %d windows", *windows),
				"owner", "pool", "p_accel_combined", "p_decel_combined")
			sets := aud.Index().SelfInterestSets()
			for _, fdg := range findings {
				res, err := core.WindowedDifferentialTest(c, aud.Registry, fdg.Result.Pool, sets[fdg.Owner], *windows)
				if err != nil {
					continue
				}
				w.AddRow(fdg.Owner, fdg.Result.Pool, res.AccelP, res.DecelP)
			}
			if err := w.Render(out); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
	}
	if *scamAddr != "" {
		set := core.TouchingAddress(c, chain.Address(*scamAddr))
		fmt.Fprintf(out, "transactions touching %s: %d\n", *scamAddr, len(set))
		if len(set) > 0 {
			rows, err := aud.ScamAudit(set, *minShare)
			if err != nil {
				return err
			}
			t := report.NewTable("Differential test over the address's transactions",
				"pool", "theta0", "x", "y", "p_accel", "p_decel", "sppe")
			for _, r := range rows {
				t.AddRow(r.Pool, r.Theta0, int(r.X), int(r.Y), r.AccelP, r.DecelP, r.SPPE)
			}
			if err := t.Render(out); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
	}
	if all || *doLowFee {
		lows := core.LowFeeConfirmations(c, poolid.DefaultRegistry())
		byPool := map[string]int{}
		for _, lf := range lows {
			byPool[lf.Pool]++
		}
		t := report.NewTable("Norm III: confirmed sub-minimum fee-rate transactions", "pool", "count")
		for _, pool := range report.SortedKeys(byPool) {
			t.AddRow(pool, byPool[pool])
		}
		if len(lows) == 0 {
			fmt.Fprintln(out, "norm III: no sub-minimum confirmations")
		} else if err := t.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if *darkPool != "" {
		cands := core.DetectAcceleratedOnIndex(aud.Index(), *darkPool, *sppeThr)
		t := report.NewTable(fmt.Sprintf("SPPE >= %g%% candidates in %s blocks", *sppeThr, *darkPool),
			"txid", "height", "sppe")
		for _, cand := range cands {
			t.AddRow(cand.TxID.String(), int(cand.Height), cand.SPPE)
		}
		fmt.Fprintf(out, "%d candidates\n", len(cands))
		if len(cands) > 0 {
			if err := t.Render(out); err != nil {
				return err
			}
		}
	}
	return nil
}
