package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chainaudit/internal/dataset"
)

// writeTestChain builds a small data set C and exports it for the CLI.
func writeTestChain(t *testing.T) string {
	t.Helper()
	ds, err := dataset.BuildC(dataset.Options{Seed: 5, Duration: 8 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chain.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteChainCSV(f, ds.Result.Chain); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAuditFullPipeline(t *testing.T) {
	path := writeTestChain(t)
	var out bytes.Buffer
	if err := run([]string{"-chain", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"loaded", "PPE overall", "Norm III"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAuditDarkFeeScan(t *testing.T) {
	path := writeTestChain(t)
	var out bytes.Buffer
	if err := run([]string{"-chain", path, "-darkfee", "BTC.com", "-sppe", "90"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "candidates") {
		t.Errorf("scan output missing: %s", out.String())
	}
}

func TestAuditValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -chain accepted")
	}
	if err := run([]string{"-chain", "/no/such/file.csv"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	// A malformed CSV must error cleanly.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	os.WriteFile(bad, []byte("not,a,chain\n1,2,3\n"), 0o644)
	if err := run([]string{"-chain", bad}, &out); err == nil {
		t.Error("malformed CSV accepted")
	}
}

func TestAuditScamAndWindowFlags(t *testing.T) {
	path := writeTestChain(t)
	// The scam wallet is deterministic for seed/duration used by
	// writeTestChain (dataset C's planted episode).
	ds, err := dataset.BuildC(dataset.Options{Seed: 5, Duration: 8 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	scam := string(ds.Result.Truth.ScamWallet)
	var out bytes.Buffer
	if err := run([]string{"-chain", path, "-scam", scam}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "transactions touching") {
		t.Errorf("scam output missing: %s", out.String())
	}
	out.Reset()
	if err := run([]string{"-chain", path, "-selfinterest", "-window", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	// At this tiny scale the audit may legitimately find nothing at
	// p < 0.001; either the findings table (with its Fisher window) or the
	// all-clear line must appear.
	s := out.String()
	if !strings.Contains(s, "Self-interest") && !strings.Contains(s, "self-interest audit") {
		t.Errorf("windowed output missing: %s", s)
	}
}
