// Command gendata builds a data set (A, B, or C analogue) and exports its
// chain as CSV, the same release format the paper's artifacts use.
//
//	gendata -set C -seed 42 -hours 48 -out chainC.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"chainaudit/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	which := fs.String("set", "C", "data set to build: A, B, or C")
	seed := fs.Uint64("seed", 42, "simulation seed")
	hours := fs.Float64("hours", 0, "simulated span in hours (0 = per-set default)")
	outPath := fs.String("out", "", "output CSV path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("-out is required")
	}
	opts := dataset.Options{Seed: *seed, Duration: time.Duration(*hours * float64(time.Hour))}
	var (
		ds  *dataset.Dataset
		err error
	)
	start := time.Now()
	switch strings.ToUpper(*which) {
	case "A":
		ds, err = dataset.BuildA(opts)
	case "B":
		ds, err = dataset.BuildB(opts)
	case "C":
		ds, err = dataset.BuildC(opts)
	default:
		return fmt.Errorf("unknown data set %q (want A, B, or C)", *which)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.WriteChainCSV(f, ds.Result.Chain); err != nil {
		return err
	}
	row := ds.Table1()
	fmt.Fprintf(out, "built data set %s in %v: %d blocks, %d txs issued, %d confirmed, CPFP %.1f%%, %d empty blocks -> %s\n",
		row.Name, time.Since(start).Round(time.Second), row.Blocks,
		row.TxIssued, row.TxConfirmed, row.CPFPPct, row.EmptyBlocks, *outPath)
	return f.Close()
}
