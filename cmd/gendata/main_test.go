package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGendataRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "chain.csv")
	var buf bytes.Buffer
	if err := run([]string{"-set", "A", "-seed", "3", "-hours", "2", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "built data set A") {
		t.Errorf("summary missing: %s", buf.String())
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 1000 {
		t.Errorf("suspiciously small CSV: %d bytes", info.Size())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "height,block_time,coinbase_tag") {
		t.Error("CSV header wrong")
	}
}

func TestGendataValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-set", "A"}, &buf); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-set", "Z", "-out", "/tmp/x.csv"}, &buf); err == nil {
		t.Error("unknown set accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-set", "B", "-out", "/nonexistent-dir-zz/x.csv", "-hours", "1"}, &buf); err == nil {
		t.Error("unwritable path accepted")
	}
}
