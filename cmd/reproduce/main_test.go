package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
	// Must fail fast, before any data set is built.
	if strings.Contains(out.String(), "building") {
		t.Error("suite build started before validation")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	var out bytes.Buffer
	// Tiny scale keeps this a smoke test; table1 touches all three sets.
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"### table1", "Table 1: data sets", "done: 1 experiments"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-csv", "-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset,from,to") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

// stripTimings drops the wall-clock lines, the only legitimately
// non-deterministic output.
func stripTimings(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "data sets ready in") || strings.HasPrefix(line, "done:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestParallelMatchesSerialOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	// A multi-experiment selection exercises the executor's merge order.
	sel := "table1,fig2,fig7,table4,norm3"
	var par, ser bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", sel, "-parallel=true"}, &par); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", sel, "-parallel=false"}, &ser); err != nil {
		t.Fatal(err)
	}
	if stripTimings(par.String()) != stripTimings(ser.String()) {
		t.Errorf("parallel and serial outputs diverge:\n--- parallel ---\n%s\n--- serial ---\n%s",
			par.String(), ser.String())
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", "table1",
		"-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
