package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chainaudit/internal/obs"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
	// Must fail fast, before any data set is built.
	if strings.Contains(out.String(), "building") {
		t.Error("suite build started before validation")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	var out bytes.Buffer
	// Tiny scale keeps this a smoke test; table1 touches all three sets.
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"### table1", "Table 1: data sets", "done: 1 experiments"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-csv", "-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset,from,to") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

// stripTimings drops the wall-clock lines, the only legitimately
// non-deterministic output.
func stripTimings(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "data sets ready in") || strings.HasPrefix(line, "done:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestParallelMatchesSerialOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	// A multi-experiment selection exercises the executor's merge order.
	sel := "table1,fig2,fig7,table4,norm3"
	var par, ser bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", sel, "-parallel=true"}, &par); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", sel, "-parallel=false"}, &ser); err != nil {
		t.Fatal(err)
	}
	if stripTimings(par.String()) != stripTimings(ser.String()) {
		t.Errorf("parallel and serial outputs diverge:\n--- parallel ---\n%s\n--- serial ---\n%s",
			par.String(), ser.String())
	}
}

func TestMetricsFlagWritesValidManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	path := filepath.Join(t.TempDir(), "m.json")
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", "table1,fig7",
		"-metrics", path}, &out); err != nil {
		t.Fatal(err)
	}
	m, err := obs.ValidateManifestFile(path)
	if err != nil {
		t.Fatalf("manifest does not validate: %v", err)
	}
	if m.Seed != 5 || m.Scale != 0.1 {
		t.Errorf("manifest provenance = seed %d scale %g", m.Seed, m.Scale)
	}
	ids := make([]string, len(m.Experiments))
	for i, e := range m.Experiments {
		ids[i] = e.ID
	}
	if len(ids) != 2 || ids[0] != "table1" || ids[1] != "fig7" {
		t.Errorf("experiment timings = %v, want [table1 fig7]", ids)
	}
	// The selection touches all three data sets, so cache activity and the
	// simulator counters must be present in the snapshot.
	if m.CacheHits+m.CacheMisses == 0 {
		t.Error("manifest records no cache activity")
	}
	if m.Metrics.Counters["sim.events"] == 0 {
		t.Error("manifest snapshot missing sim.events")
	}

	// The written manifest must pass the -validate-metrics path too.
	var vout bytes.Buffer
	if err := run([]string{"-validate-metrics", path}, &vout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vout.String(), "manifest ok") {
		t.Errorf("validate output %q", vout.String())
	}
}

func TestValidateMetricsRejectsBadFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-validate-metrics", bad}, &out); err == nil {
		t.Error("wrong-schema manifest accepted")
	}
	if err := run([]string{"-validate-metrics", filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Error("missing manifest accepted")
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", "table1",
		"-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
