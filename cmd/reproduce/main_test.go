package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
	// Must fail fast, before any data set is built.
	if strings.Contains(out.String(), "building") {
		t.Error("suite build started before validation")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	var out bytes.Buffer
	// Tiny scale keeps this a smoke test; table1 touches all three sets.
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"### table1", "Table 1: data sets", "done: 1 experiments"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-csv", "-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset,from,to") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}
