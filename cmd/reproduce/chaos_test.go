package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chainaudit/internal/obs"
)

// TestRequireFaultsFailsCleanRun pins the -require-faults gate: a run that
// injected nothing must fail it, judged on this run's counter delta rather
// than process history.
func TestRequireFaultsFailsCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	var out bytes.Buffer
	err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", "table1", "-require-faults"}, &out)
	if err == nil || !strings.Contains(err.Error(), "no fault fired") {
		t.Fatalf("err = %v, want require-faults failure", err)
	}
}

// TestChaosZeroRateMatchesBaseline pins the tentpole invariant end-to-end:
// a seeded all-zero-rate plan must produce byte-identical stdout to no plan
// at all, on the gap-aware figure path included.
func TestChaosZeroRateMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	sel := "table1,fig9"
	var base, zero bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", sel}, &base); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.1", "-seed", "5", "-exp", sel, "-chaos", "seed=77"}, &zero); err != nil {
		t.Fatal(err)
	}
	if stripTimings(base.String()) != stripTimings(zero.String()) {
		t.Errorf("zero-rate chaos diverges from baseline:\n--- base ---\n%s\n--- chaos ---\n%s",
			base.String(), zero.String())
	}
}

// TestChaosRunCompletesWithFaultsInManifest runs a fault-injected suite end
// to end: it must finish, satisfy -require-faults, and write a manifest
// recording the plan and nonzero fault/degradation tallies.
func TestChaosRunCompletesWithFaultsInManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	path := filepath.Join(t.TempDir(), "m.json")
	var out bytes.Buffer
	// A seed no other test uses: cached fault-free builds would leave this
	// run's fault delta at zero.
	err := run([]string{"-scale", "0.1", "-seed", "91", "-exp", "table1,fig4,fig9",
		"-chaos", "seed=3,pool.outage=0.2,obs.miss=0.25,snap.blackout=0.3,snap.window=15m",
		"-metrics", path, "-require-faults"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.ValidateManifestFile(path)
	if err != nil {
		t.Fatalf("manifest does not validate: %v", err)
	}
	if !strings.Contains(m.Chaos, "pool.outage=0.2") {
		t.Errorf("manifest chaos = %q", m.Chaos)
	}
	if m.FaultsInjected == 0 {
		t.Error("manifest records no injected faults")
	}
	if m.Degradations == 0 {
		t.Error("manifest records no degradations")
	}
	// The degraded figures carry their coverage on stdout.
	if !strings.Contains(out.String(), "coverage") {
		t.Error("degraded run prints no coverage annotation")
	}
}

// TestCheckpointResumesVerbatim proves resumed experiments are re-emitted
// from the checkpoint, not recomputed: poison one saved body and the poison
// must surface in the resumed run's output, with everything else unchanged.
func TestCheckpointResumesVerbatim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	cpPath := filepath.Join(t.TempDir(), "cp.json")
	args := []string{"-scale", "0.1", "-seed", "5", "-exp", "table1,fig2", "-checkpoint", cpPath}
	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	// A checkpointed run must not perturb the output itself.
	var plain bytes.Buffer
	if err := run(args[:len(args)-2], &plain); err != nil {
		t.Fatal(err)
	}
	if stripTimings(first.String()) != stripTimings(plain.String()) {
		t.Error("checkpointing changed the output")
	}

	data, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		t.Fatal(err)
	}
	if len(cp.Completed) != 2 {
		t.Fatalf("checkpoint holds %d experiments, want 2", len(cp.Completed))
	}
	cp.Completed["table1"] = "POISONED TABLE1 BODY\n"
	poisoned, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cpPath, poisoned, 0o644); err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := run(args, &resumed); err != nil {
		t.Fatal(err)
	}
	s := resumed.String()
	if !strings.Contains(s, "POISONED TABLE1 BODY") {
		t.Fatal("resume recomputed table1 instead of replaying the checkpoint")
	}
	if !strings.Contains(s, "Figure 2: blocks and transactions") {
		t.Error("resume lost fig2's body")
	}

	// A config change invalidates the checkpoint: the poison must vanish.
	var fresh bytes.Buffer
	if err := run([]string{"-scale", "0.1", "-seed", "6", "-exp", "table1,fig2", "-checkpoint", cpPath}, &fresh); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fresh.String(), "POISONED") {
		t.Error("stale checkpoint replayed under a different config")
	}
}
