// Command reproduce regenerates the paper's tables and figures from
// simulated data sets.
//
// Usage:
//
//	reproduce [-seed N] [-scale X] [-csv] [-exp list]
//
// -exp selects experiments by id (comma separated): fig1..fig14, table1..
// table5, norm3, ablations, or "all" (default). -scale grows the simulated
// spans (1 = bench scale: A 12 h, B 16 h, C 48 h).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"chainaudit/internal/experiments"
)

type renderable interface {
	Render(io.Writer) error
	RenderCSV(io.Writer) error
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "simulation seed")
	scale := fs.Float64("scale", 1, "data set duration scale")
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned text")
	expFlag := fs.String("exp", "all", "comma-separated experiment ids (fig1..fig14, table1..table5, norm3, extensions, ablations, all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	known := map[string]bool{"all": true, "norm3": true, "extensions": true, "ablations": true}
	for i := 1; i <= 14; i++ {
		known[fmt.Sprintf("fig%d", i)] = true
	}
	for i := 1; i <= 5; i++ {
		known[fmt.Sprintf("table%d", i)] = true
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if !known[id] {
			return fmt.Errorf("unknown experiment id %q", id)
		}
		want[id] = true
	}
	selected := func(id string) bool { return want["all"] || want[id] }

	start := time.Now()
	fmt.Fprintf(out, "building data sets (seed=%d scale=%g)...\n", *seed, *scale)
	suite, err := experiments.NewSuite(*seed, *scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "data sets ready in %v\n\n", time.Since(start).Round(time.Second))

	emit := func(r renderable) error {
		var err error
		if *asCSV {
			err = r.RenderCSV(out)
		} else {
			err = r.Render(out)
		}
		if err == nil {
			_, err = fmt.Fprintln(out)
		}
		return err
	}

	type step struct {
		id  string
		run func() error
	}
	steps := []step{
		{"fig1", func() error {
			f, err := suite.Fig01NormShift()
			if err != nil {
				return err
			}
			return emit(f)
		}},
		{"table1", func() error { return emit(suite.Table1()) }},
		{"fig2", func() error { return emit(suite.Fig02PoolShares()) }},
		{"fig3", func() error {
			fb, fc, cum := suite.Fig03Congestion()
			if err := emit(cum); err != nil {
				return err
			}
			if err := emit(fb); err != nil {
				return err
			}
			return emit(fc)
		}},
		{"fig4", func() error {
			fa, fb, fc := suite.Fig04DelaysFees()
			for _, f := range []renderable{fa, fb, fc} {
				if err := emit(f); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig5", func() error { return emit(suite.Fig05FeeDelay()) }},
		{"fig6", func() error {
			all, non := suite.Fig06ViolationPairs(30)
			if err := emit(all); err != nil {
				return err
			}
			return emit(non)
		}},
		{"fig7", func() error {
			f, overall := suite.Fig07PPE()
			fmt.Fprintf(out, "PPE overall: %s\n", overall)
			return emit(f)
		}},
		{"fig8", func() error { return emit(suite.Fig08PoolWallets()) }},
		{"table2", func() error {
			t, _, err := suite.Table2SelfInterest()
			if err != nil {
				return err
			}
			return emit(t)
		}},
		{"table3", func() error {
			t, _, err := suite.Table3Scam()
			if err != nil {
				return err
			}
			return emit(t)
		}},
		{"table4", func() error {
			t, _ := suite.Table4DarkFee()
			return emit(t)
		}},
		{"table5", func() error {
			t, _, err := suite.Table5FeeRevenue()
			if err != nil {
				return err
			}
			return emit(t)
		}},
		{"norm3", func() error { return emit(suite.NormIIICensus()) }},
		{"fig9", func() error { return emit(suite.Fig09MempoolB()) }},
		{"fig10", func() error { return emit(suite.Fig10FeeratesByPool()) }},
		{"fig11", func() error { return emit(suite.Fig11CongestionFeesB()) }},
		{"fig12", func() error { return emit(suite.Fig12FeeDelayB()) }},
		{"fig13", func() error { return emit(suite.Fig13ScamWindowShares()) }},
		{"fig14", func() error {
			f, ratios := suite.Fig14AccelFees()
			fmt.Fprintf(out, "acceleration-fee multiple of public fee: %s\n", ratios)
			return emit(f)
		}},
		{"extensions", func() error {
			bias, err := suite.ExtFeeEstimatorBias()
			if err != nil {
				return err
			}
			if err := emit(bias); err != nil {
				return err
			}
			cens, err := suite.ExtCensorshipPower()
			if err != nil {
				return err
			}
			if err := emit(cens); err != nil {
				return err
			}
			sig, err := suite.ExtDelaySignificance()
			if err != nil {
				return err
			}
			if err := emit(sig); err != nil {
				return err
			}
			cmp, err := suite.ExtNormComparison()
			if err != nil {
				return err
			}
			if err := emit(cmp); err != nil {
				return err
			}
			rbf, err := suite.ExtConflictOutcomes()
			if err != nil {
				return err
			}
			return emit(rbf)
		}},
		{"ablations", func() error {
			gap, err := suite.AblationPolicyGap()
			if err != nil {
				return err
			}
			if err := emit(gap); err != nil {
				return err
			}
			if err := emit(suite.AblationBinomApprox()); err != nil {
				return err
			}
			return emit(suite.AblationSnapshotSampling())
		}},
	}
	ran := 0
	for _, s := range steps {
		if !selected(s.id) {
			continue
		}
		fmt.Fprintf(out, "### %s\n", s.id)
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.id, err)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *expFlag)
	}
	fmt.Fprintf(out, "done: %d experiments in %v\n", ran, time.Since(start).Round(time.Second))
	return nil
}
