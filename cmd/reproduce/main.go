// Command reproduce regenerates the paper's tables and figures from
// simulated data sets.
//
// Usage:
//
//	reproduce [-seed N] [-scale X] [-csv] [-exp list] [-parallel]
//	          [-cpuprofile f] [-memprofile f] [-metrics f]
//	reproduce -validate-metrics f
//
// -exp selects experiments by id (comma separated): fig1..fig14, table1..
// table5, norm3, ablations, or "all" (default); -only NAME runs exactly one
// experiment resolved through the experiments registry (the same registry
// chainauditd serves). -scale grows the simulated
// spans (1 = bench scale: A 12 h, B 16 h, C 48 h). With -parallel (the
// default) the selected experiments fan out over the pipeline executor and
// their outputs are emitted in deterministic order; -parallel=false forces
// the serial reference path. -cpuprofile/-memprofile write pprof profiles
// covering the whole run, for measuring pipeline speedups.
//
// -chaos runs the whole reproduction under a deterministic fault-injection
// plan (internal/faults spec, e.g. "seed=7,pool.outage=0.1,obs.miss=0.2"):
// the simulations degrade, the audits exclude what they can no longer trust
// and annotate their coverage, and the manifest tallies every fault and
// degradation. A zero-rate plan is byte-identical to no plan. -watchdog and
// -retries bound each experiment (watchdog defaults to 10m when chaos is
// active); -require-faults fails the run unless at least one fault actually
// fired (the smoke gate for chaos runs). -checkpoint saves each completed
// experiment's rendered output so a killed run resumes verbatim — the final
// report of a killed-and-resumed run is byte-identical to an uninterrupted
// one.
//
// -metrics writes a run manifest (internal/obs schema chainaudit.metrics/v1)
// carrying provenance (seed, config hash, git revision), per-experiment wall
// times, data-set cache hits, and pipeline worker occupancy, and prints a
// human-readable digest on stderr; the experiment output on stdout is
// unaffected, so parallel runs stay byte-identical to serial ones.
// -validate-metrics checks an existing manifest against the schema and
// exits; the Makefile's check gate uses it to keep the observability surface
// from rotting.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"chainaudit/internal/experiments"
	"chainaudit/internal/faults"
	"chainaudit/internal/obs"
	"chainaudit/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "simulation seed")
	scale := fs.Float64("scale", 1, "data set duration scale")
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned text")
	expFlag := fs.String("exp", "all", "comma-separated experiment ids (fig1..fig14, table1..table5, norm3, extensions, ablations, all)")
	onlyFlag := fs.String("only", "", "run exactly one experiment by registry name (overrides -exp)")
	par := fs.Bool("parallel", true, "run selected experiments on the parallel pipeline executor")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	metricsPath := fs.String("metrics", "", "write a run manifest (JSON) to this file and a summary to stderr")
	validatePath := fs.String("validate-metrics", "", "validate an existing run manifest and exit")
	chaosSpec := fs.String("chaos", "", "deterministic fault-injection spec: seed=N,knob=rate,... (see internal/faults)")
	checkpointPath := fs.String("checkpoint", "", "save each completed experiment here and resume verbatim on restart")
	watchdog := fs.Duration("watchdog", 0, "per-experiment watchdog timeout (0 = none; defaults to 10m under -chaos)")
	retries := fs.Int("retries", 0, "per-experiment retries on failure (exponential backoff)")
	requireFaults := fs.Bool("require-faults", false, "fail unless the run injected at least one fault")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validatePath != "" {
		m, err := obs.ValidateManifestFile(*validatePath)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "manifest ok: %s, %d experiments, config %s\n",
			*validatePath, len(m.Experiments), m.ConfigHash)
		return nil
	}

	// Selection resolves through the experiment registry — the same one
	// chainauditd serves — so the CLI can never offer an experiment the
	// service does not (or vice versa). Validation happens before any data
	// set is built.
	if *onlyFlag != "" {
		id := strings.TrimSpace(strings.ToLower(*onlyFlag))
		if _, ok := experiments.ByName(id); !ok {
			return fmt.Errorf("unknown experiment id %q (known: %s)",
				id, strings.Join(experiments.Names(), ", "))
		}
		*expFlag = id
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "all" {
			if _, ok := experiments.ByName(id); !ok {
				return fmt.Errorf("unknown experiment id %q", id)
			}
		}
		want[id] = true
	}
	selected := func(id string) bool { return want["all"] || want[id] }

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: memprofile:", err)
			}
		}()
	}

	var plan *faults.Plan
	if *chaosSpec != "" {
		var err error
		if plan, err = faults.ParseSpec(*chaosSpec); err != nil {
			return err
		}
	}
	if *watchdog == 0 && plan.Active() {
		*watchdog = 10 * time.Minute
	}

	faultsBefore := sumFaultCounters()
	start := time.Now()
	fmt.Fprintf(out, "building data sets (seed=%d scale=%g)...\n", *seed, *scale)
	suite, err := experiments.NewSuiteChaos(*seed, *scale, plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "data sets ready in %v\n\n", time.Since(start).Round(time.Second))

	// Every experiment comes from the registry, in canonical order; each runs
	// against a text sink over its own buffer, reproducing the historical
	// inline dispatch byte-for-byte.
	var picked []*experiments.Descriptor
	for _, d := range experiments.All() {
		if selected(d.ID) {
			picked = append(picked, d)
		}
	}
	if len(picked) == 0 {
		return fmt.Errorf("no experiment matched %q", *expFlag)
	}
	// Per-experiment wall times for the manifest, stored atomically: an
	// attempt abandoned by the watchdog may report late, concurrently with
	// its retry. Timing observes the runs without altering them, so stdout
	// stays byte-identical across modes.
	expWall := make([]atomic.Int64, len(picked))
	timed := func(i int, w io.Writer) error {
		t0 := time.Now()
		err := picked[i].Run(suite, experiments.NewTextSink(w, *asCSV))
		expWall[i].Store(int64(time.Since(t0)))
		return err
	}

	// Serial and parallel share one path: every experiment renders into its
	// own buffer under the cancellation/watchdog/retry layer, and buffers are
	// emitted in selection order — byte-identical either way. -parallel only
	// picks the worker count.
	exec := pipeline.Default()
	if !*par {
		exec = pipeline.New(1)
	}
	var cp *checkpoint
	if *checkpointPath != "" {
		// The checkpoint hash covers exactly the flags that determine output
		// bytes — parallelism deliberately excluded.
		cp = loadCheckpoint(*checkpointPath, obs.ConfigHash(
			fmt.Sprintf("seed=%d", *seed),
			fmt.Sprintf("scale=%g", *scale),
			fmt.Sprintf("exp=%s", *expFlag),
			fmt.Sprintf("csv=%t", *asCSV),
			fmt.Sprintf("chaos=%s", plan.Fingerprint()),
		))
	}
	bufs := make([]bytes.Buffer, len(picked))
	resumed := make([]bool, len(picked))
	if cp != nil {
		for i, s := range picked {
			if body, ok := cp.Completed[s.ID]; ok {
				bufs[i].WriteString(body)
				resumed[i] = true
			}
		}
	}
	rc := pipeline.RunConfig{Timeout: *watchdog, Retries: *retries, Backoff: time.Second}
	results, batchErr := pipeline.MapCtx(exec, context.Background(), len(picked), rc,
		func(ctx context.Context, i int) (struct{}, error) {
			if resumed[i] {
				return struct{}{}, nil
			}
			// Render into an attempt-local buffer: bytes from a failed or
			// watchdog-abandoned attempt must never interleave with a retry's.
			var local bytes.Buffer
			if err := timed(i, &local); err != nil {
				return struct{}{}, err
			}
			bufs[i] = local
			if cp != nil {
				return struct{}{}, cp.record(*checkpointPath, picked[i].ID, bufs[i].String())
			}
			return struct{}{}, nil
		})
	if batchErr != nil {
		return batchErr
	}
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", picked[i].ID, r.Err)
		}
		fmt.Fprintf(out, "### %s\n", picked[i].ID)
		if _, err := bufs[i].WriteTo(out); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "done: %d experiments in %v\n", len(picked), time.Since(start).Round(time.Second))

	if *metricsPath != "" {
		workers := exec.Workers()
		m := obs.NewManifest("", *seed, *scale, obs.ConfigHash(
			fmt.Sprintf("seed=%d", *seed),
			fmt.Sprintf("scale=%g", *scale),
			fmt.Sprintf("exp=%s", *expFlag),
			fmt.Sprintf("parallel=%t", *par),
			fmt.Sprintf("workers=%d", workers),
			fmt.Sprintf("chaos=%s", plan.Fingerprint()),
		))
		m.Parallel = *par
		m.Workers = workers
		m.Chaos = plan.Fingerprint()
		m.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		for i, s := range picked {
			m.Experiments = append(m.Experiments, obs.ExperimentTiming{
				ID:     s.ID,
				WallMS: float64(expWall[i].Load()) / float64(time.Millisecond),
			})
		}
		m.FillFromSnapshot(obs.Default.Snapshot())
		if err := m.WriteFile(*metricsPath); err != nil {
			return err
		}
		m.Summary(os.Stderr)
	}
	if *requireFaults {
		if injected := sumFaultCounters() - faultsBefore; injected == 0 {
			return fmt.Errorf("require-faults: no fault fired (chaos plan %q)", *chaosSpec)
		}
	}
	return nil
}

// sumFaultCounters totals every injected-fault counter; run() takes a delta
// so -require-faults judges this run, not the process history.
func sumFaultCounters() int64 {
	var total int64
	for name, v := range obs.Default.Snapshot().Counters {
		if strings.HasPrefix(name, "faults.") {
			total += v
		}
	}
	return total
}
