// Command reproduce regenerates the paper's tables and figures from
// simulated data sets.
//
// Usage:
//
//	reproduce [-seed N] [-scale X] [-csv] [-exp list] [-parallel]
//	          [-cpuprofile f] [-memprofile f] [-metrics f]
//	reproduce -validate-metrics f
//
// -exp selects experiments by id (comma separated): fig1..fig14, table1..
// table5, norm3, ablations, or "all" (default). -scale grows the simulated
// spans (1 = bench scale: A 12 h, B 16 h, C 48 h). With -parallel (the
// default) the selected experiments fan out over the pipeline executor and
// their outputs are emitted in deterministic order; -parallel=false forces
// the serial reference path. -cpuprofile/-memprofile write pprof profiles
// covering the whole run, for measuring pipeline speedups.
//
// -metrics writes a run manifest (internal/obs schema chainaudit.metrics/v1)
// carrying provenance (seed, config hash, git revision), per-experiment wall
// times, data-set cache hits, and pipeline worker occupancy, and prints a
// human-readable digest on stderr; the experiment output on stdout is
// unaffected, so parallel runs stay byte-identical to serial ones.
// -validate-metrics checks an existing manifest against the schema and
// exits; the Makefile's check gate uses it to keep the observability surface
// from rotting.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"chainaudit/internal/experiments"
	"chainaudit/internal/obs"
	"chainaudit/internal/pipeline"
)

type renderable interface {
	Render(io.Writer) error
	RenderCSV(io.Writer) error
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "simulation seed")
	scale := fs.Float64("scale", 1, "data set duration scale")
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned text")
	expFlag := fs.String("exp", "all", "comma-separated experiment ids (fig1..fig14, table1..table5, norm3, extensions, ablations, all)")
	par := fs.Bool("parallel", true, "run selected experiments on the parallel pipeline executor")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	metricsPath := fs.String("metrics", "", "write a run manifest (JSON) to this file and a summary to stderr")
	validatePath := fs.String("validate-metrics", "", "validate an existing run manifest and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validatePath != "" {
		m, err := obs.ValidateManifestFile(*validatePath)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "manifest ok: %s, %d experiments, config %s\n",
			*validatePath, len(m.Experiments), m.ConfigHash)
		return nil
	}

	known := map[string]bool{"all": true, "norm3": true, "extensions": true, "ablations": true}
	for i := 1; i <= 14; i++ {
		known[fmt.Sprintf("fig%d", i)] = true
	}
	for i := 1; i <= 5; i++ {
		known[fmt.Sprintf("table%d", i)] = true
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if !known[id] {
			return fmt.Errorf("unknown experiment id %q", id)
		}
		want[id] = true
	}
	selected := func(id string) bool { return want["all"] || want[id] }

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce: memprofile:", err)
			}
		}()
	}

	start := time.Now()
	fmt.Fprintf(out, "building data sets (seed=%d scale=%g)...\n", *seed, *scale)
	suite, err := experiments.NewSuite(*seed, *scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "data sets ready in %v\n\n", time.Since(start).Round(time.Second))

	emit := func(w io.Writer, r renderable) error {
		var err error
		if *asCSV {
			err = r.RenderCSV(w)
		} else {
			err = r.Render(w)
		}
		if err == nil {
			_, err = fmt.Fprintln(w)
		}
		return err
	}

	type step struct {
		id  string
		run func(w io.Writer) error
	}
	steps := []step{
		{"fig1", func(w io.Writer) error {
			f, err := suite.Fig01NormShift()
			if err != nil {
				return err
			}
			return emit(w, f)
		}},
		{"table1", func(w io.Writer) error { return emit(w, suite.Table1()) }},
		{"fig2", func(w io.Writer) error { return emit(w, suite.Fig02PoolShares()) }},
		{"fig3", func(w io.Writer) error {
			fb, fc, cum := suite.Fig03Congestion()
			if err := emit(w, cum); err != nil {
				return err
			}
			if err := emit(w, fb); err != nil {
				return err
			}
			return emit(w, fc)
		}},
		{"fig4", func(w io.Writer) error {
			fa, fb, fc := suite.Fig04DelaysFees()
			for _, f := range []renderable{fa, fb, fc} {
				if err := emit(w, f); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig5", func(w io.Writer) error { return emit(w, suite.Fig05FeeDelay()) }},
		{"fig6", func(w io.Writer) error {
			all, non := suite.Fig06ViolationPairs(30)
			if err := emit(w, all); err != nil {
				return err
			}
			return emit(w, non)
		}},
		{"fig7", func(w io.Writer) error {
			f, overall := suite.Fig07PPE()
			fmt.Fprintf(w, "PPE overall: %s\n", overall)
			return emit(w, f)
		}},
		{"fig8", func(w io.Writer) error { return emit(w, suite.Fig08PoolWallets()) }},
		{"table2", func(w io.Writer) error {
			t, _, err := suite.Table2SelfInterest()
			if err != nil {
				return err
			}
			return emit(w, t)
		}},
		{"table3", func(w io.Writer) error {
			t, _, err := suite.Table3Scam()
			if err != nil {
				return err
			}
			return emit(w, t)
		}},
		{"table4", func(w io.Writer) error {
			t, _ := suite.Table4DarkFee()
			return emit(w, t)
		}},
		{"table5", func(w io.Writer) error {
			t, _, err := suite.Table5FeeRevenue()
			if err != nil {
				return err
			}
			return emit(w, t)
		}},
		{"norm3", func(w io.Writer) error { return emit(w, suite.NormIIICensus()) }},
		{"fig9", func(w io.Writer) error { return emit(w, suite.Fig09MempoolB()) }},
		{"fig10", func(w io.Writer) error { return emit(w, suite.Fig10FeeratesByPool()) }},
		{"fig11", func(w io.Writer) error { return emit(w, suite.Fig11CongestionFeesB()) }},
		{"fig12", func(w io.Writer) error { return emit(w, suite.Fig12FeeDelayB()) }},
		{"fig13", func(w io.Writer) error { return emit(w, suite.Fig13ScamWindowShares()) }},
		{"fig14", func(w io.Writer) error {
			f, ratios := suite.Fig14AccelFees()
			fmt.Fprintf(w, "acceleration-fee multiple of public fee: %s\n", ratios)
			return emit(w, f)
		}},
		{"extensions", func(w io.Writer) error {
			bias, err := suite.ExtFeeEstimatorBias()
			if err != nil {
				return err
			}
			if err := emit(w, bias); err != nil {
				return err
			}
			cens, err := suite.ExtCensorshipPower()
			if err != nil {
				return err
			}
			if err := emit(w, cens); err != nil {
				return err
			}
			sig, err := suite.ExtDelaySignificance()
			if err != nil {
				return err
			}
			if err := emit(w, sig); err != nil {
				return err
			}
			cmp, err := suite.ExtNormComparison()
			if err != nil {
				return err
			}
			if err := emit(w, cmp); err != nil {
				return err
			}
			rbf, err := suite.ExtConflictOutcomes()
			if err != nil {
				return err
			}
			return emit(w, rbf)
		}},
		{"ablations", func(w io.Writer) error {
			gap, err := suite.AblationPolicyGap()
			if err != nil {
				return err
			}
			if err := emit(w, gap); err != nil {
				return err
			}
			if err := emit(w, suite.AblationBinomApprox()); err != nil {
				return err
			}
			return emit(w, suite.AblationSnapshotSampling())
		}},
	}
	var picked []step
	for _, s := range steps {
		if selected(s.id) {
			picked = append(picked, s)
		}
	}
	if len(picked) == 0 {
		return fmt.Errorf("no experiment matched %q", *expFlag)
	}
	// Per-experiment wall times for the manifest. Timing observes the runs
	// without altering them, so stdout stays byte-identical across modes.
	expWall := make([]time.Duration, len(picked))
	timed := func(i int, w io.Writer) error {
		t0 := time.Now()
		err := picked[i].run(w)
		expWall[i] = time.Since(t0)
		return err
	}
	if *par {
		// Fan the selected experiments out over the executor; each renders
		// into its own buffer and the buffers are emitted in selection
		// order, so the output is byte-identical to the serial path.
		bufs := make([]bytes.Buffer, len(picked))
		results := pipeline.MapErr(pipeline.Default(), len(picked), func(i int) (struct{}, error) {
			return struct{}{}, timed(i, &bufs[i])
		})
		for i, r := range results {
			if r.Err != nil {
				return fmt.Errorf("%s: %w", picked[i].id, r.Err)
			}
			fmt.Fprintf(out, "### %s\n", picked[i].id)
			if _, err := bufs[i].WriteTo(out); err != nil {
				return err
			}
		}
	} else {
		for i, s := range picked {
			fmt.Fprintf(out, "### %s\n", s.id)
			if err := timed(i, out); err != nil {
				return fmt.Errorf("%s: %w", s.id, err)
			}
		}
	}
	fmt.Fprintf(out, "done: %d experiments in %v\n", len(picked), time.Since(start).Round(time.Second))

	if *metricsPath != "" {
		workers := 1
		if *par {
			workers = pipeline.Default().Workers()
		}
		m := obs.NewManifest("", *seed, *scale, obs.ConfigHash(
			fmt.Sprintf("seed=%d", *seed),
			fmt.Sprintf("scale=%g", *scale),
			fmt.Sprintf("exp=%s", *expFlag),
			fmt.Sprintf("parallel=%t", *par),
			fmt.Sprintf("workers=%d", workers),
		))
		m.Parallel = *par
		m.Workers = workers
		m.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		for i, s := range picked {
			m.Experiments = append(m.Experiments, obs.ExperimentTiming{
				ID:     s.id,
				WallMS: float64(expWall[i]) / float64(time.Millisecond),
			})
		}
		m.FillFromSnapshot(obs.Default.Snapshot())
		if err := m.WriteFile(*metricsPath); err != nil {
			return err
		}
		m.Summary(os.Stderr)
	}
	return nil
}
