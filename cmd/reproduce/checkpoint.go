package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// CheckpointSchema identifies the checkpoint layout; mismatched files are
// started over, never misread.
const CheckpointSchema = "chainaudit.checkpoint/v1"

// checkpoint persists the rendered output of every completed experiment so a
// killed run can resume without recomputing (or re-randomizing) anything.
// Completed bodies are re-emitted verbatim, which is what makes a resumed
// run's final report byte-identical to an uninterrupted one. The config hash
// covers exactly the flags that determine output bytes (seed, scale,
// selection, csv, chaos fingerprint — not parallelism), so a checkpoint
// taken serially resumes under -parallel and vice versa, while any
// output-affecting change invalidates it.
type checkpoint struct {
	Schema     string            `json:"schema"`
	ConfigHash string            `json:"config_hash"`
	Completed  map[string]string `json:"completed"`

	mu sync.Mutex
}

// loadCheckpoint reads the checkpoint at path, returning a fresh one when
// the file is missing, unreadable, or was written under a different config.
// Corruption is never fatal: the worst case is recomputing.
func loadCheckpoint(path, configHash string) *checkpoint {
	fresh := &checkpoint{Schema: CheckpointSchema, ConfigHash: configHash, Completed: map[string]string{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return fresh
	}
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil ||
		cp.Schema != CheckpointSchema || cp.ConfigHash != configHash || cp.Completed == nil {
		fmt.Fprintf(os.Stderr, "reproduce: ignoring stale checkpoint %s\n", path)
		return fresh
	}
	return &cp
}

// record saves an experiment's rendered body and rewrites the file. Safe for
// concurrent completions; each write lands the full state, so a kill between
// writes loses at most the experiments not yet recorded.
func (cp *checkpoint) record(path, id, body string) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.Completed[id] = body
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	return nil
}
