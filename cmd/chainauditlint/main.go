// Command chainauditlint runs the repository's determinism and
// audit-integrity analyzer suite (internal/lint) over module packages:
//
//	chainauditlint [-v] [-json] [packages ...]
//
// Patterns follow the go tool ("./...", "./internal/core"); with no
// arguments it lints "./...". Exit status: 0 when every finding is
// suppressed or absent, 1 when unsuppressed findings remain, 2 when
// loading or type-checking fails. -v additionally prints suppressed
// findings with their //lint:allow reasons (the audit trail); -json emits
// the findings as a JSON array instead of text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"chainaudit/internal/lint"
)

func main() {
	var (
		verbose = flag.Bool("v", false, "also print suppressed findings with their //lint:allow reasons")
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chainauditlint:", err)
		os.Exit(2)
	}
	code, err := run(os.Stdout, cwd, patterns, *verbose, *jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chainauditlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run lints the packages matched by patterns (resolved against dir) and
// reports findings on w. It returns the process exit code.
func run(w io.Writer, dir string, patterns []string, verbose, jsonOut bool) (int, error) {
	mod, err := lint.FindModule(dir)
	if err != nil {
		return 2, err
	}
	loader := lint.NewLoader(mod)
	dirs, err := loader.Expand(dir, patterns)
	if err != nil {
		return 2, err
	}
	pkgs := make([]*lint.Package, 0, len(dirs))
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			return 2, err
		}
		pkgs = append(pkgs, p)
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return 2, err
		}
	} else {
		for _, f := range findings {
			if f.Suppressed && !verbose {
				continue
			}
			pos := f.Pos
			if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
			if f.Suppressed {
				fmt.Fprintf(w, "%s: %s: suppressed: %s (//lint:allow %s)\n", pos, f.Analyzer, f.Message, f.Reason)
			} else {
				fmt.Fprintf(w, "%s: %s: %s\n", pos, f.Analyzer, f.Message)
			}
		}
	}
	unsuppressed := lint.Unsuppressed(findings)
	if !jsonOut {
		fmt.Fprintf(w, "chainauditlint: %d packages, %d findings (%d suppressed)\n",
			len(pkgs), len(findings), len(findings)-unsuppressed)
	}
	if unsuppressed > 0 {
		return 1, nil
	}
	return 0, nil
}
