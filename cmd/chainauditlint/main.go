// Command chainauditlint runs the repository's determinism and
// concurrency/durability analyzer suite (internal/lint) over module
// packages:
//
//	chainauditlint [-v] [-json] [-fixtures] [packages ...]
//
// Patterns follow the go tool ("./...", "./internal/core"); with no
// arguments it lints "./...". Exit status: 0 when every finding is
// suppressed or absent, 1 when unsuppressed findings remain, 2 when
// loading or type-checking fails. -v additionally prints suppressed
// findings with their //lint:allow reasons (the audit trail); -json emits
// a chainaudit.lint/v1 report object (totals, per-analyzer counts, and the
// findings) instead of text, for CI artifacts.
//
// -fixtures runs the suite's self-test instead of linting: for every
// registered analyzer it loads the analyzer's own fixture package under
// internal/lint/testdata/src/<name> and fails (exit 1) unless the analyzer
// still produces unsuppressed findings there. The analyzer list comes from
// the registry itself, so a newly registered analyzer cannot ship without
// a firing fixture.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"chainaudit/internal/lint"
)

// lintAPI versions the -json report schema, like the service schemas.
const lintAPI = "chainaudit.lint/v1"

func main() {
	var (
		verbose  = flag.Bool("v", false, "also print suppressed findings with their //lint:allow reasons")
		jsonOut  = flag.Bool("json", false, "emit a "+lintAPI+" report object as JSON")
		fixtures = flag.Bool("fixtures", false, "self-test: every registered analyzer must fire on its own fixture package")
	)
	flag.Parse()
	patterns := flag.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chainauditlint:", err)
		os.Exit(2)
	}
	var code int
	if *fixtures {
		if len(patterns) > 0 {
			err = errors.New("-fixtures takes no package patterns: the registry decides what to check")
		} else {
			code, err = runFixtures(os.Stdout, cwd)
		}
	} else {
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		code, err = run(os.Stdout, cwd, patterns, *verbose, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chainauditlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// analyzerCount tallies one analyzer's findings for the report and the
// failure trailer.
type analyzerCount struct {
	Total        int `json:"total"`
	Suppressed   int `json:"suppressed"`
	Unsuppressed int `json:"unsuppressed"`
}

// report is the -json output: one machine-readable object per run.
type report struct {
	API          string                    `json:"api"`
	Packages     int                       `json:"packages"`
	Total        int                       `json:"total"`
	Suppressed   int                       `json:"suppressed"`
	Unsuppressed int                       `json:"unsuppressed"`
	ByAnalyzer   map[string]*analyzerCount `json:"by_analyzer"`
	Findings     []lint.Finding            `json:"findings"`
}

// countByAnalyzer tallies findings per analyzer name.
func countByAnalyzer(findings []lint.Finding) map[string]*analyzerCount {
	by := make(map[string]*analyzerCount)
	for _, f := range findings {
		c := by[f.Analyzer]
		if c == nil {
			c = &analyzerCount{}
			by[f.Analyzer] = c
		}
		c.Total++
		if f.Suppressed {
			c.Suppressed++
		} else {
			c.Unsuppressed++
		}
	}
	return by
}

// run lints the packages matched by patterns (resolved against dir) and
// reports findings on w. It returns the process exit code.
func run(w io.Writer, dir string, patterns []string, verbose, jsonOut bool) (int, error) {
	mod, err := lint.FindModule(dir)
	if err != nil {
		return 2, err
	}
	loader := lint.NewLoader(mod)
	dirs, err := loader.Expand(dir, patterns)
	if err != nil {
		return 2, err
	}
	pkgs := make([]*lint.Package, 0, len(dirs))
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			return 2, err
		}
		pkgs = append(pkgs, p)
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	unsuppressed := lint.Unsuppressed(findings)
	if jsonOut {
		rep := report{
			API:          lintAPI,
			Packages:     len(pkgs),
			Total:        len(findings),
			Suppressed:   len(findings) - unsuppressed,
			Unsuppressed: unsuppressed,
			ByAnalyzer:   countByAnalyzer(findings),
			Findings:     findings,
		}
		if rep.Findings == nil {
			rep.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 2, err
		}
	} else {
		for _, f := range findings {
			if f.Suppressed && !verbose {
				continue
			}
			pos := f.Pos
			if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
			if f.Suppressed {
				fmt.Fprintf(w, "%s: %s: suppressed: %s (//lint:allow %s)\n", pos, f.Analyzer, f.Message, f.Reason)
			} else {
				fmt.Fprintf(w, "%s: %s: %s\n", pos, f.Analyzer, f.Message)
			}
		}
		fmt.Fprintf(w, "chainauditlint: %d packages, %d findings (%d suppressed)\n",
			len(pkgs), len(findings), len(findings)-unsuppressed)
		if unsuppressed > 0 {
			// Attribute the failure per analyzer so a regression is
			// readable straight off the make check output.
			by := countByAnalyzer(findings)
			names := make([]string, 0, len(by))
			for name, c := range by {
				if c.Unsuppressed > 0 {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			fmt.Fprintf(w, "chainauditlint: unsuppressed by analyzer:")
			for _, name := range names {
				fmt.Fprintf(w, " %s=%d", name, by[name].Unsuppressed)
			}
			fmt.Fprintln(w)
		}
	}
	if unsuppressed > 0 {
		return 1, nil
	}
	return 0, nil
}

// runFixtures is the -fixtures self-test: every analyzer in the registry
// must produce at least one unsuppressed finding on its own fixture
// package, or the analyzer is silently dead (or its fixture rotted).
func runFixtures(w io.Writer, dir string) (int, error) {
	mod, err := lint.FindModule(dir)
	if err != nil {
		return 2, err
	}
	loader := lint.NewLoader(mod)
	failed := false
	for _, a := range lint.Analyzers() {
		fixDir := filepath.Join(mod.Dir, "internal", "lint", "testdata", "src", a.Name)
		pkg, err := loader.Load(fixDir)
		if err != nil {
			fmt.Fprintf(w, "fixtures: %s: loading fixture package: %v\n", a.Name, err)
			failed = true
			continue
		}
		n := 0
		for _, f := range lint.Run([]*lint.Package{pkg}, lint.Analyzers()) {
			if f.Analyzer == a.Name && !f.Suppressed {
				n++
			}
		}
		if n == 0 {
			fmt.Fprintf(w, "fixtures: %s: no unsuppressed findings on its own fixture — the analyzer is dead or the fixture rotted\n", a.Name)
			failed = true
			continue
		}
		fmt.Fprintf(w, "fixtures: %s ok (%d findings)\n", a.Name, n)
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}
