package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"chainaudit/internal/lint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	mod, err := lint.FindModule(".")
	if err != nil {
		t.Fatalf("find module: %v", err)
	}
	return mod.Dir
}

// TestRunFixtureFails pins the gate semantics: a fixture package with known
// findings must produce exit code 1 and name its analyzer in the output.
func TestRunFixtureFails(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	fixture := filepath.Join("internal", "lint", "testdata", "src", "maporder")
	code, err := run(&out, root, []string{"./" + filepath.ToSlash(fixture)}, false, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), ": maporder: ") {
		t.Fatalf("output does not name the maporder analyzer:\n%s", out.String())
	}
}

// TestRunCleanPackage pins the zero exit on a package with no findings.
func TestRunCleanPackage(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	code, err := run(&out, root, []string{"./internal/stats"}, false, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "0 findings") {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
}

// TestRunJSON pins the -json chainaudit.lint/v1 report shape consumers
// script against: versioned api field, totals that add up, per-analyzer
// counts, and fully-populated findings.
func TestRunJSON(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	fixture := filepath.Join("internal", "lint", "testdata", "src", "errdrop")
	code, err := run(&out, root, []string{"./" + filepath.ToSlash(fixture)}, false, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a JSON report object: %v\n%s", err, out.String())
	}
	if rep.API != lintAPI {
		t.Fatalf("api = %q, want %q", rep.API, lintAPI)
	}
	if rep.Packages != 1 {
		t.Errorf("packages = %d, want 1", rep.Packages)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("JSON report has no findings")
	}
	if rep.Total != len(rep.Findings) || rep.Suppressed+rep.Unsuppressed != rep.Total {
		t.Errorf("totals inconsistent: total=%d suppressed=%d unsuppressed=%d findings=%d",
			rep.Total, rep.Suppressed, rep.Unsuppressed, len(rep.Findings))
	}
	ec := rep.ByAnalyzer["errdrop"]
	if ec == nil || ec.Unsuppressed == 0 {
		t.Errorf("by_analyzer missing errdrop unsuppressed count: %+v", rep.ByAnalyzer)
	}
	sum := 0
	for _, c := range rep.ByAnalyzer {
		sum += c.Total
	}
	if sum != rep.Total {
		t.Errorf("by_analyzer totals sum to %d, want %d", sum, rep.Total)
	}
	for _, f := range rep.Findings {
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
}

// TestRunUnsuppressedTrailer pins the per-analyzer attribution line a
// failing make check prints.
func TestRunUnsuppressedTrailer(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	fixture := filepath.Join("internal", "lint", "testdata", "src", "maporder")
	code, err := run(&out, root, []string{"./" + filepath.ToSlash(fixture)}, false, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "unsuppressed by analyzer: maporder=") {
		t.Fatalf("failure output missing per-analyzer counts:\n%s", out.String())
	}
}

// TestRunFixturesMode pins the -fixtures self-test: with the shipped
// fixtures every registered analyzer fires, so the mode exits zero and
// names each analyzer.
func TestRunFixturesMode(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	code, err := runFixtures(&out, root)
	if err != nil {
		t.Fatalf("runFixtures: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\noutput:\n%s", code, out.String())
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out.String(), "fixtures: "+a.Name+" ok") {
			t.Errorf("self-test output does not cover %s:\n%s", a.Name, out.String())
		}
	}
}

// TestRunBadPattern pins the loader-error path to exit code 2.
func TestRunBadPattern(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	code, err := run(&out, root, []string{"./no/such/dir"}, false, false)
	if err == nil {
		t.Fatal("run succeeded on a nonexistent pattern")
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
