package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"chainaudit/internal/lint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	mod, err := lint.FindModule(".")
	if err != nil {
		t.Fatalf("find module: %v", err)
	}
	return mod.Dir
}

// TestRunFixtureFails pins the gate semantics: a fixture package with known
// findings must produce exit code 1 and name its analyzer in the output.
func TestRunFixtureFails(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	fixture := filepath.Join("internal", "lint", "testdata", "src", "maporder")
	code, err := run(&out, root, []string{"./" + filepath.ToSlash(fixture)}, false, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), ": maporder: ") {
		t.Fatalf("output does not name the maporder analyzer:\n%s", out.String())
	}
}

// TestRunCleanPackage pins the zero exit on a package with no findings.
func TestRunCleanPackage(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	code, err := run(&out, root, []string{"./internal/stats"}, false, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "0 findings") {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
}

// TestRunJSON pins the -json shape consumers script against.
func TestRunJSON(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	fixture := filepath.Join("internal", "lint", "testdata", "src", "errdrop")
	code, err := run(&out, root, []string{"./" + filepath.ToSlash(fixture)}, false, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var findings []lint.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
}

// TestRunBadPattern pins the loader-error path to exit code 2.
func TestRunBadPattern(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	code, err := run(&out, root, []string{"./no/such/dir"}, false, false)
	if err == nil {
		t.Fatal("run succeeded on a nonexistent pattern")
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
