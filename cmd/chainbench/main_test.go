package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestReportShape runs a small measurement and validates the emitted
// document against the chainaudit.bench/v1 shape `make bench` checks in.
func TestReportShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-hours", "1", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Schema != BenchSchema || rep.Go == "" {
		t.Errorf("header = %+v", rep)
	}
	if rep.Dataset.Blocks == 0 || rep.Dataset.Txs == 0 {
		t.Errorf("dataset = %+v", rep.Dataset)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("results = %d, want 8", len(rep.Results))
	}
	names := map[string]bool{}
	for _, r := range rep.Results {
		names[r.Name] = true
		if r.Iters == 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Name, r)
		}
	}
	for _, want := range []string{
		"index.Build/batch", "index.AppendBlock/replay",
		"observer.Run/IndexSink", "observer.Run/HTTPSink",
		"observer.Run/IndexSink/attributed", "core.DivergenceAudit/sources=2",
	} {
		if !names[want] {
			t.Errorf("missing result %q (have %v)", want, names)
		}
	}
	// The attribution counters are deterministic in the seed: two sources,
	// every tx shared, and exactly the planted laggard s2 flagged.
	if rep.Attribution == nil {
		t.Fatal("report has no attribution block")
	}
	a := rep.Attribution
	if len(a.Sources) != 2 || a.Sources[0] != "s1" || a.Sources[1] != "s2" {
		t.Errorf("attribution sources = %v, want [s1 s2]", a.Sources)
	}
	if a.LedgerTxs == 0 || a.SharedTxs != a.LedgerTxs {
		t.Errorf("attribution ledger = %d shared = %d", a.LedgerTxs, a.SharedTxs)
	}
	if len(a.Flagged) != 1 || a.Flagged[0] != "s2" {
		t.Errorf("attribution flagged = %v, want [s2]", a.Flagged)
	}
	for _, r := range rep.Results {
		switch r.Name {
		case "index.AppendBlock/replay":
			if r.P50Ns == 0 || r.P99Ns < r.P50Ns {
				t.Errorf("append percentiles = p50 %d p95 %d p99 %d", r.P50Ns, r.P95Ns, r.P99Ns)
			}
			if r.BlocksPerSec <= 0 {
				t.Errorf("append throughput = %v", r.BlocksPerSec)
			}
		case "observer.Run/HTTPSink":
			// The observer-lag percentiles ride on the HTTP shipping result.
			if r.P50Ns == 0 || r.P99Ns < r.P50Ns {
				t.Errorf("ship percentiles = p50 %d p95 %d p99 %d", r.P50Ns, r.P95Ns, r.P99Ns)
			}
			if r.BlocksPerSec <= 0 {
				t.Errorf("live-ingest throughput = %v", r.BlocksPerSec)
			}
		}
	}
}
