// Command chainbench measures the cost of the batch-vs-incremental index
// refactor and the streaming audit path, emitting a machine-readable report
// (the checked-in BENCH_8.json):
//
//	chainbench -seed 11 -hours 4 -out BENCH_8.json
//
// Measurements over one simulated data set C:
//
//   - index.Build/batch         — the one-shot batch index over the full chain
//   - index.AppendBlock/replay  — the same chain grown block by block through
//     the incremental path (throughput plus per-append latency percentiles)
//   - WindowAuditor.ObserveBlock — maintaining sliding-window audit state
//   - WindowAuditor.AuditPPE/32  — one windowed re-audit, the per-request cost
//     of a streaming audit endpoint after an append
//   - observer.Run/IndexSink    — the live-observer pipeline applied in
//     process (chain replayed as an event stream into an incremental index)
//   - observer.Run/HTTPSink     — the same stream shipped over HTTP into an
//     in-memory chainauditd ingest endpoint (live-ingest throughput), with
//     per-batch emit-to-ack ship latency percentiles ("observer lag")
//   - observer.Run/IndexSink/attributed — the in-process pipeline under a
//     source ID, which adds per-source first-seen ledger maintenance
//   - core.DivergenceAudit/sources=2 — the cross-observer divergence audit
//     over a two-source ledger (the per-request cost of /v1/audit/divergence),
//     with the ledger's attribution counters recorded in the report
//
// Throughput numbers (ns/op, allocs) come from testing.Benchmark; append
// latency percentiles come from an instrumented replay. The report is a
// performance artifact: its numbers are machine-dependent by nature, only
// its shape (the chainaudit.bench/v1 schema) is stable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"chainaudit/internal/chain"
	"chainaudit/internal/core"
	"chainaudit/internal/dataset"
	"chainaudit/internal/index"
	"chainaudit/internal/observer"
	"chainaudit/internal/serve"
)

// BenchSchema identifies the report format.
const BenchSchema = "chainaudit.bench/v1"

// Report is the emitted document.
type Report struct {
	Schema      string       `json:"schema"`
	Go          string       `json:"go"`
	OS          string       `json:"os"`
	Arch        string       `json:"arch"`
	Dataset     Dataset      `json:"dataset"`
	Results     []Result     `json:"results"`
	Attribution *Attribution `json:"attribution,omitempty"`
}

// Attribution records the source-attribution counters from the two-source
// divergence measurement: what the per-source ledger held and what the
// audit flagged. Unlike the timing numbers these are deterministic for a
// given seed — the planted 3s laggard must always be the one flagged.
type Attribution struct {
	Sources   []string `json:"sources"`
	LedgerTxs int      `json:"ledger_txs"`
	SharedTxs int      `json:"shared_txs"`
	Flagged   []string `json:"flagged"`
}

// Dataset records what was measured over.
type Dataset struct {
	Builder string  `json:"builder"`
	Seed    uint64  `json:"seed"`
	Hours   float64 `json:"hours"`
	Blocks  int     `json:"blocks"`
	Txs     int64   `json:"txs"`
}

// Result is one measurement. Latency percentiles are present only for the
// per-append measurement; BlocksPerSec only where an op covers the chain.
type Result struct {
	Name         string  `json:"name"`
	Iters        int     `json:"iters"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	BlocksPerSec float64 `json:"blocks_per_sec,omitempty"`
	P50Ns        int64   `json:"p50_ns,omitempty"`
	P95Ns        int64   `json:"p95_ns,omitempty"`
	P99Ns        int64   `json:"p99_ns,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chainbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chainbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 11, "simulation seed")
	hours := fs.Float64("hours", 4, "simulated span in hours")
	window := fs.Int("window", 32, "sliding-window size for the re-audit measurement")
	outPath := fs.String("out", "BENCH_8.json", "report path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := dataset.Cached(dataset.BuilderC, dataset.Options{Seed: *seed, Duration: time.Duration(*hours * float64(time.Hour))})
	if err != nil {
		return err
	}
	c := ds.Result.Chain
	blocks := c.Blocks()
	rep := Report{
		Schema: BenchSchema,
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		Dataset: Dataset{
			Builder: "C", Seed: *seed, Hours: *hours,
			Blocks: c.Len(), Txs: c.TxCount(),
		},
	}

	// Batch: the one-shot build over the full chain.
	batch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ix := index.Build(c, ds.Registry); ix.Len() != c.Len() {
				b.Fatal("short index")
			}
		}
	})
	rep.Results = append(rep.Results, result("index.Build/batch", batch, c.Len()))

	// Incremental: the same chain replayed through AppendBlock.
	incr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix := index.NewIncremental(ds.Registry)
			for _, blk := range blocks {
				if _, err := ix.AppendBlock(blk); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	incrRes := result("index.AppendBlock/replay", incr, c.Len())

	// Per-append latency percentiles from one instrumented replay.
	lat := make([]time.Duration, 0, len(blocks))
	ix := index.NewIncremental(ds.Registry)
	for _, blk := range blocks {
		t0 := time.Now()
		if _, err := ix.AppendBlock(blk); err != nil {
			return err
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	incrRes.P50Ns = percentile(lat, 50)
	incrRes.P95Ns = percentile(lat, 95)
	incrRes.P99Ns = percentile(lat, 99)
	rep.Results = append(rep.Results, incrRes)

	// Maintaining sliding-window audit state per block.
	recs := make([]*index.BlockRecord, ix.Len())
	for i := range recs {
		recs[i] = ix.Record(i)
	}
	observe := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := core.NewWindowAuditor(0)
			for _, r := range recs {
				if err := w.ObserveBlock(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	rep.Results = append(rep.Results, result("core.WindowAuditor.ObserveBlock/replay", observe, c.Len()))

	// One windowed re-audit — the post-append cost of a streaming endpoint.
	w := core.NewWindowAuditor(0)
	for _, r := range recs {
		if err := w.ObserveBlock(r); err != nil {
			return err
		}
	}
	audit := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if rep := w.AuditPPE(*window, core.AuditOptions{}); rep.Overall.N == 0 {
				b.Fatal("empty")
			}
		}
	})
	rep.Results = append(rep.Results, result(fmt.Sprintf("core.WindowAuditor.AuditPPE/window=%d", *window), audit, 0))

	// The live-observer pipeline applied in process: the chain replayed as
	// an event stream (block + seen-delta snapshot each) into a fresh
	// incremental index and window per iteration.
	ctx := context.Background()
	inproc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := &observer.IndexSink{
				Index: index.NewIncremental(ds.Registry),
				Win:   core.NewWindowAuditor(0),
			}
			st, err := observer.Run(ctx, observer.NewChainSource(c), sink, observer.Config{BatchBlocks: 16})
			if err != nil {
				b.Fatal(err)
			}
			if st.Blocks != c.Len() {
				b.Fatalf("short run: %d blocks", st.Blocks)
			}
		}
	})
	rep.Results = append(rep.Results, result("observer.Run/IndexSink", inproc, c.Len()))

	// The same pipeline under a source ID: every snapshot's seen events also
	// land in the per-source first-seen ledger, the cost the v2 ingest path
	// adds over v1.
	attrib := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := &observer.IndexSink{
				Index:  index.NewIncremental(ds.Registry),
				Win:    core.NewWindowAuditor(0),
				Source: "s1",
			}
			st, err := observer.Run(ctx, observer.NewChainSource(c), sink, observer.Config{BatchBlocks: 16})
			if err != nil {
				b.Fatal(err)
			}
			if st.Blocks != c.Len() {
				b.Fatalf("short run: %d blocks", st.Blocks)
			}
		}
	})
	rep.Results = append(rep.Results, result("observer.Run/IndexSink/attributed", attrib, c.Len()))

	// The divergence audit over a two-source ledger: s1 fed by the attributed
	// pipeline, s2 replayed with a planted 3s systematic delay. The timing is
	// the per-request cost of /v1/audit/divergence; the attribution counters
	// (and the flagged laggard) are recorded in the report.
	ixAttr := index.NewIncremental(ds.Registry)
	attrSink := &observer.IndexSink{Index: ixAttr, Win: core.NewWindowAuditor(0), Source: "s1"}
	if _, err := observer.Run(ctx, observer.NewChainSource(c), attrSink, observer.Config{BatchBlocks: 16}); err != nil {
		return err
	}
	for _, blk := range blocks {
		seen := make(map[chain.TxID]time.Time, len(blk.Body()))
		for _, tx := range blk.Body() {
			seen[tx.ID] = tx.Time.Add(3 * time.Second)
		}
		ixAttr.ObserveFirstSeenFrom("s2", seen)
	}
	ledger := ixAttr.SourceSeenTimes()
	divBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if rep := core.DivergenceAudit(ledger, core.DivergenceOptions{}); len(rep.Sources) != 2 {
				b.Fatalf("divergence saw %d sources", len(rep.Sources))
			}
		}
	})
	rep.Results = append(rep.Results, result("core.DivergenceAudit/sources=2", divBench, 0))
	div := core.DivergenceAudit(ledger, core.DivergenceOptions{})
	rep.Attribution = &Attribution{
		Sources:   ixAttr.Sources(),
		LedgerTxs: len(ledger),
		SharedTxs: div.SharedTxs,
		Flagged:   div.FlaggedSources(),
	}
	if len(rep.Attribution.Flagged) != 1 || rep.Attribution.Flagged[0] != "s2" {
		return fmt.Errorf("divergence flagged %v, want exactly [s2]", rep.Attribution.Flagged)
	}

	// The same stream shipped over HTTP into an in-memory ingest endpoint —
	// live-ingest throughput including JSON framing and the service's own
	// append path. Each iteration targets a fresh streaming data set. The
	// service needs at least one startup set, so the measured chain doubles
	// as the CSV-loaded reference.
	csvDir, err := os.MkdirTemp("", "chainbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(csvDir)
	csvPath := csvDir + "/chain.csv"
	cf, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := dataset.WriteChainCSV(cf, c); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{Chains: []serve.ChainSpec{{Name: "main", Path: csvPath}}})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	iter := 0
	var shipped *observer.Stats
	httpBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			iter++
			sink := &observer.HTTPSink{URL: ts.URL, Dataset: fmt.Sprintf("bench-%d", iter)}
			st, err := observer.Run(ctx, observer.NewChainSource(c), sink, observer.Config{BatchBlocks: 16})
			if err != nil {
				b.Fatal(err)
			}
			if st.Blocks != c.Len() {
				b.Fatalf("short run: %d blocks", st.Blocks)
			}
			shipped = st
		}
	})
	httpRes := result("observer.Run/HTTPSink", httpBench, c.Len())
	// Observer lag: per-batch emit-to-ack ship durations from the last run.
	if shipped != nil && len(shipped.Ship) > 0 {
		ship := append([]time.Duration(nil), shipped.Ship...)
		sort.Slice(ship, func(i, j int) bool { return ship[i] < ship[j] })
		httpRes.P50Ns = percentile(ship, 50)
		httpRes.P95Ns = percentile(ship, 95)
		httpRes.P99Ns = percentile(ship, 99)
	}
	rep.Results = append(rep.Results, httpRes)

	var dst io.Writer = out
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	if *outPath != "-" {
		for _, r := range rep.Results {
			fmt.Fprintf(out, "%-44s %12.0f ns/op %10d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Fprintf(out, "report -> %s\n", *outPath)
	}
	return nil
}

// result converts a testing.BenchmarkResult; blocks > 0 adds chain
// throughput (an op covers the whole chain).
func result(name string, r testing.BenchmarkResult, blocks int) Result {
	res := Result{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if blocks > 0 && res.NsPerOp > 0 {
		res.BlocksPerSec = float64(blocks) / (res.NsPerOp / float64(time.Second/time.Nanosecond))
	}
	return res
}

// percentile reads the p-th percentile from an ascending sample set
// (nearest-rank on the closed index range).
func percentile(sorted []time.Duration, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p * (len(sorted) - 1)) / 100
	return sorted[idx].Nanoseconds()
}
