// Command chainauditd serves the paper's audit pipeline as a long-running
// HTTP/JSON service (see internal/serve and DESIGN.md §8):
//
//	chainauditd [-addr host:port] [-sim] [-seed N] [-scale X] [-chaos spec]
//	            [-chain name=path ...] [-watchdog d] [-retries n]
//	            [-stream-retain N] [-stream-dir d] [-stream-fsync policy]
//	            [-stream-checkpoint N] [-max-ingest-bytes N] [-ready-file f]
//
// Data sets load once at startup: -chain name=path loads a chain CSV (as
// produced by cmd/gendata) under the given name, repeatably; -sim builds
// the simulated suite data sets A, B, and C and enables the experiment
// endpoints. With no -chain flags, -sim is implied — unless -stream-dir
// alone is given, in which case the daemon boots empty and recovers
// whatever streaming sets the directory holds. Additional streaming
// data sets are created at runtime by POST /v1/ingest (cmd/streamfeed
// replays recorded streams).
//
// -stream-dir makes streaming sets crash-safe (DESIGN.md §13): every
// accepted ingest batch is appended to a per-set write-ahead log before it
// is acknowledged, and on restart the daemon replays checkpoint + WAL so a
// kill -9 mid-stream loses nothing that was acked. -stream-fsync picks the
// durability/throughput trade (always | batch | off, default batch);
// -stream-checkpoint compacts each WAL after that many appended lines.
// -max-ingest-bytes caps a single ingest body (413 above it). Endpoints:
//
//	GET  /v1/healthz              liveness + data sets (index length, ingest watermark)
//	GET  /v1/metrics              obs registry snapshot (incl. serve.ingest.*)
//	GET  /v1/experiments          the experiment registry (ids, titles, params)
//	POST /v1/experiments/{name}   run one experiment (?format=json|text|csv)
//	POST /v1/audits/{kind}        ppe | selfinterest | lowfee | scam | darkfee
//	                              | divergence
//	                              (?dataset= ?minshare= ?sppe= ?windows=
//	                               ?address= ?pool= ?timeout_ms= ?format=
//	                               ?window=N — sliding-window variant of
//	                               ppe/lowfee/darkfee over the last N blocks,
//	                               0 = all retained)
//	POST /v1/audit/divergence     cross-observer first-seen divergence over
//	                              the per-source ledger (?dataset=
//	                               ?threshold_ms= ?minshared=; DESIGN.md §14)
//	POST /v1/ingest               append block/mempool frames to a streaming
//	                              data set (JSON body: dataset, blocks, mempool)
//	POST /v2/ingest               same schema plus source attribution: a
//	                              request-level "source" and/or per-frame
//	                              overrides feed the per-source first-seen
//	                              ledger; /v1 bodies stay valid and anonymous
//
// Errors from every endpoint share one JSON envelope
// (chainaudit.error/v1: api, code, error, plus context fields).
//
// Responses are value-identical to the batch CLIs (cmd/reproduce,
// cmd/chainaudit); text-format bodies are byte-identical to the matching
// CLI sections, and a replayed stream audits byte-identically to the batch
// path over the same window. -watchdog bounds each request's computation
// (504 on timeout); -ready-file writes the bound address once listening,
// for scripts that start the daemon on port 0. SIGINT/SIGTERM shut down
// gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chainaudit/internal/serve"
)

// chainList collects repeated -chain name=path flags.
type chainList []serve.ChainSpec

func (c *chainList) String() string {
	parts := make([]string, len(*c))
	for i, spec := range *c {
		parts[i] = spec.Name + "=" + spec.Path
	}
	return strings.Join(parts, ",")
}

func (c *chainList) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*c = append(*c, serve.ChainSpec{Name: name, Path: path})
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "chainauditd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("chainauditd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port with -ready-file)")
	seed := fs.Uint64("seed", 42, "simulation seed for -sim data sets")
	scale := fs.Float64("scale", 1, "simulated data set duration scale")
	sim := fs.Bool("sim", false, "build the simulated suite data sets (A, B, C); implied when no -chain is given")
	chaos := fs.String("chaos", "", "build -sim data sets under a fault-injection spec (see internal/faults)")
	watchdog := fs.Duration("watchdog", 2*time.Minute, "per-request watchdog timeout (0 = none)")
	retries := fs.Int("retries", 0, "per-request retries on failure")
	streamRetain := fs.Int("stream-retain", 0, "retention horizon for streaming data sets in blocks (0 = unbounded)")
	streamDir := fs.String("stream-dir", "", "write-ahead log directory for streaming data sets (crash-safe ingest + recovery on boot)")
	streamFsync := fs.String("stream-fsync", "", "WAL fsync policy: always | batch | off (default batch)")
	streamCkpt := fs.Int("stream-checkpoint", 0, "compact each WAL after this many appended lines (0 = default)")
	maxIngest := fs.Int64("max-ingest-bytes", 0, "cap on a single ingest request body in bytes (0 = default)")
	readyFile := fs.String("ready-file", "", "write the bound address to this file once listening")
	var chains chainList
	fs.Var(&chains, "chain", "chain CSV to serve as name=path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *streamDir == "" && (*streamFsync != "" || *streamCkpt != 0) {
		return fmt.Errorf("-stream-fsync and -stream-checkpoint require -stream-dir")
	}
	if len(chains) == 0 && *streamDir == "" {
		*sim = true
	}

	cfg := serve.Config{
		Seed:            *seed,
		Scale:           *scale,
		Chaos:           *chaos,
		Chains:          chains,
		Sim:             *sim,
		Watchdog:        *watchdog,
		Retries:         *retries,
		StreamRetain:    *streamRetain,
		StreamDir:       *streamDir,
		StreamFsync:     *streamFsync,
		CheckpointEvery: *streamCkpt,
		MaxIngestBytes:  *maxIngest,
	}
	fmt.Fprintf(logw, "chainauditd: loading data sets (sim=%t chains=%d)...\n", *sim, len(chains))
	start := time.Now()
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "chainauditd: %d data sets ready in %v\n",
		len(srv.DatasetNames()), time.Since(start).Round(time.Millisecond))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "chainauditd: listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fmt.Fprintln(logw, "chainauditd: shutting down")
		serr := hs.Shutdown(sctx)
		// Graceful exit checkpoints and closes every durable streaming set so
		// the next boot replays a compact log instead of the full WAL.
		if cerr := srv.Close(); serr == nil {
			serr = cerr
		}
		return serr
	case err := <-errc:
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
