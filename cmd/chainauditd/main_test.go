package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestChainListFlag(t *testing.T) {
	var c chainList
	if err := c.Set("main=/tmp/a.csv"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("extra=/tmp/b.csv"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0].Name != "main" || c[1].Path != "/tmp/b.csv" {
		t.Errorf("chains = %+v", c)
	}
	if c.String() != "main=/tmp/a.csv,extra=/tmp/b.csv" {
		t.Errorf("String() = %q", c.String())
	}
	for _, bad := range []string{"", "nameonly", "=path", "name="} {
		if err := c.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	var log bytes.Buffer
	if err := run(ctx, []string{"-nonsense"}, &log); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(ctx, []string{"-chain", "broken"}, &log); err == nil {
		t.Error("bad chain spec accepted")
	}
	if err := run(ctx, []string{"-chain", "x=/no/such/file.csv"}, &log); err == nil {
		t.Error("missing chain CSV accepted")
	}
}

// TestServeAndShutdown boots the daemon on an ephemeral port, waits for the
// ready file, drives one real HTTP round trip, and checks context
// cancellation shuts it down cleanly.
func TestServeAndShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds data sets")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := filepath.Join(t.TempDir(), "addr")
	done := make(chan error, 1)
	var log bytes.Buffer
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-ready-file", ready,
			"-seed", "5", "-scale", "0.1",
		}, &log)
	}()

	var addr string
	deadline := time.Now().Add(2 * time.Minute)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready; log:\n%s", log.String())
		}
		if raw, err := os.ReadFile(ready); err == nil && len(raw) > 0 {
			addr = string(raw)
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v\nlog:\n%s", err, log.String())
		case <-time.After(50 * time.Millisecond):
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var health struct {
		Status   string `json:"status"`
		Datasets []struct {
			Name string `json:"name"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Datasets) != 3 {
		t.Errorf("health = %+v", health)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(log.String(), "shutting down") {
		t.Errorf("log missing shutdown notice:\n%s", log.String())
	}
}
