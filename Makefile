GO ?= go

.PHONY: check build vet test race bench bench-key reproduce clean

# check is the tier-1 gate: vet, build, and the full test suite under the
# race detector.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every experiment benchmark; bench-key just the two the
# shared-index refactor is measured by (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

bench-key:
	$(GO) test -bench='BenchmarkFig07PPE|BenchmarkTable2SelfInterest' -benchtime=3x -run=^$$ .

reproduce:
	$(GO) run ./cmd/reproduce

clean:
	$(GO) clean ./...
