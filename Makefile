GO ?= go

.PHONY: check build vet test race bench bench-key reproduce lint lint-fixtures lint-json smoke-metrics smoke-chaos smoke-serve smoke-stream smoke-live smoke-crash smoke-multi clean

# check is the tier-1 gate: vet, build, the analyzer suite (plus the guard
# that keeps its fixtures honest), the full test suite under the race
# detector, and the metrics, chaos, service, stream-replay, live-feed,
# crash-recovery, and multi-source smoke tests.
check: vet build lint lint-fixtures race smoke-metrics smoke-chaos smoke-serve smoke-stream smoke-live smoke-crash smoke-multi

# lint runs the determinism & concurrency/durability analyzer suite
# (DESIGN.md §9) over every module package. Any unsuppressed finding fails
# the gate; the failure output attributes counts per analyzer.
lint:
	$(GO) run ./cmd/chainauditlint ./...

# lint-fixtures proves each analyzer still fires. The -fixtures self-test
# derives the analyzer list from the registry itself, so a newly registered
# analyzer can never ship without a firing fixture — a fixture that stops
# producing its diagnostic means a silently dead analyzer, and fails here
# before it can rot.
lint-fixtures:
	$(GO) run ./cmd/chainauditlint -fixtures

# lint-json emits the chainaudit.lint/v1 report (totals, per-analyzer
# counts, findings incl. the suppression audit trail) to lint.json for CI
# artifacts. Findings (exit 1) still produce the artifact; only loader or
# type-check errors (exit 2) fail the target.
lint-json:
	$(GO) run ./cmd/chainauditlint -json ./... > lint.json; \
	code=$$?; if [ $$code -ne 0 ] && [ $$code -ne 1 ]; then exit $$code; fi
	@echo "lint-json: wrote lint.json"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every experiment benchmark, then refreshes the machine-readable
# streaming-path report (BENCH_8.json, chainaudit.bench/v1 schema: batch vs
# incremental index, window maintenance, live observer ingest with ship
# latency percentiles, and attributed multi-source observation with the
# divergence-audit counters); bench-key just the two the shared-index
# refactor is measured by. BENCH_N.json files are a perf trajectory, one per
# PR that moved the streaming path — older ones stay checked in
# (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	$(GO) run ./cmd/chainbench -out BENCH_8.json

bench-key:
	$(GO) test -bench='BenchmarkFig07PPE|BenchmarkTable2SelfInterest' -benchtime=3x -run=^$$ .

reproduce:
	$(GO) run ./cmd/reproduce

# smoke-metrics runs one small experiment with -metrics and validates the
# emitted manifest against the internal/obs schema, keeping the
# observability surface from rotting.
smoke-metrics:
	$(GO) run ./cmd/reproduce -exp fig7 -scale 0.1 -metrics /tmp/chainaudit-metrics.json > /dev/null
	$(GO) run ./cmd/reproduce -validate-metrics /tmp/chainaudit-metrics.json

# smoke-chaos exercises the fault-injection layer end to end. The zero-rate
# leg pins the tentpole invariant — a seeded plan with all rates at zero must
# leave stdout byte-identical to a plain run (wall-clock lines stripped).
# The fault leg must complete despite injected faults, actually fire at least
# one (-require-faults), and emit a manifest that validates and records them.
smoke-chaos:
	$(GO) run ./cmd/reproduce -exp table1,fig9 -scale 0.1 > /tmp/chainaudit-chaos-base.txt
	$(GO) run ./cmd/reproduce -exp table1,fig9 -scale 0.1 -chaos seed=77 > /tmp/chainaudit-chaos-zero.txt
	grep -v -e '^data sets ready' -e '^done:' /tmp/chainaudit-chaos-base.txt > /tmp/chainaudit-chaos-base.strip.txt
	grep -v -e '^data sets ready' -e '^done:' /tmp/chainaudit-chaos-zero.txt > /tmp/chainaudit-chaos-zero.strip.txt
	cmp /tmp/chainaudit-chaos-base.strip.txt /tmp/chainaudit-chaos-zero.strip.txt
	$(GO) run ./cmd/reproduce -exp table1,fig4,fig9 -scale 0.1 \
		-chaos 'seed=3,pool.outage=0.2,obs.miss=0.25,snap.blackout=0.3,snap.window=15m' \
		-require-faults -metrics /tmp/chainaudit-chaos-metrics.json > /dev/null
	$(GO) run ./cmd/reproduce -validate-metrics /tmp/chainaudit-chaos-metrics.json

# smoke-serve boots chainauditd on an ephemeral port and proves the service
# serves the same bytes the batch CLIs print: one experiment section diffed
# against cmd/reproduce (same seed/scale), one audit section diffed against
# cmd/chainaudit over a shared gendata CSV.
smoke-serve:
	$(GO) build -o /tmp/chainauditd ./cmd/chainauditd
	$(GO) run ./cmd/gendata -set C -seed 9 -hours 5 -out /tmp/chainaudit-serve-chain.csv > /dev/null
	$(GO) run ./cmd/reproduce -exp fig2 -seed 5 -scale 0.1 \
		| sed -n '/^\#\#\# fig2$$/,/^done:/p' | sed '1d;$$d' > /tmp/chainaudit-serve-fig2-cli.txt
	$(GO) run ./cmd/chainaudit -chain /tmp/chainaudit-serve-chain.csv -ppe \
		| tail -n +3 > /tmp/chainaudit-serve-ppe-cli.txt
	rm -f /tmp/chainaudit-serve-addr
	/tmp/chainauditd -addr 127.0.0.1:0 -ready-file /tmp/chainaudit-serve-addr \
		-sim -seed 5 -scale 0.1 -chain main=/tmp/chainaudit-serve-chain.csv 2> /tmp/chainaudit-serve-log.txt & \
	DPID=$$!; trap 'kill $$DPID 2>/dev/null' EXIT; \
	tries=0; until [ -s /tmp/chainaudit-serve-addr ]; do \
		tries=$$((tries+1)); \
		if [ $$tries -gt 1200 ]; then echo "chainauditd never became ready"; cat /tmp/chainaudit-serve-log.txt; exit 1; fi; \
		if ! kill -0 $$DPID 2>/dev/null; then echo "chainauditd died"; cat /tmp/chainaudit-serve-log.txt; exit 1; fi; \
		sleep 0.1; \
	done; \
	ADDR=$$(cat /tmp/chainaudit-serve-addr) && \
	curl -sf "http://$$ADDR/v1/healthz" | grep -q '"status":"ok"' && \
	curl -sf "http://$$ADDR/v1/experiments" | grep -q '"id":"fig7"' && \
	curl -sf -X POST "http://$$ADDR/v1/experiments/fig2?format=text" > /tmp/chainaudit-serve-fig2-srv.txt && \
	curl -sf -X POST "http://$$ADDR/v1/audits/ppe?dataset=main&format=text" > /tmp/chainaudit-serve-ppe-srv.txt && \
	cmp /tmp/chainaudit-serve-fig2-cli.txt /tmp/chainaudit-serve-fig2-srv.txt && \
	cmp /tmp/chainaudit-serve-ppe-cli.txt /tmp/chainaudit-serve-ppe-srv.txt

# smoke-stream pins the streaming headline invariant end to end over real
# processes: record a gendata chain as an ingest stream, boot chainauditd
# with the same CSV as the batch reference, replay the stream into a fresh
# data set, and diff the streamed audits byte-for-byte against the batch
# ones — full chain and sliding window.
smoke-stream:
	$(GO) build -o /tmp/chainauditd ./cmd/chainauditd
	$(GO) build -o /tmp/streamfeed ./cmd/streamfeed
	$(GO) run ./cmd/gendata -set C -seed 9 -hours 5 -out /tmp/chainaudit-stream-chain.csv > /dev/null
	/tmp/streamfeed record -chain /tmp/chainaudit-stream-chain.csv \
		-out /tmp/chainaudit-stream.jsonl -batch 16 -dataset live
	rm -f /tmp/chainaudit-stream-addr
	/tmp/chainauditd -addr 127.0.0.1:0 -ready-file /tmp/chainaudit-stream-addr \
		-chain main=/tmp/chainaudit-stream-chain.csv 2> /tmp/chainaudit-stream-log.txt & \
	DPID=$$!; trap 'kill $$DPID 2>/dev/null' EXIT; \
	tries=0; until [ -s /tmp/chainaudit-stream-addr ]; do \
		tries=$$((tries+1)); \
		if [ $$tries -gt 1200 ]; then echo "chainauditd never became ready"; cat /tmp/chainaudit-stream-log.txt; exit 1; fi; \
		if ! kill -0 $$DPID 2>/dev/null; then echo "chainauditd died"; cat /tmp/chainaudit-stream-log.txt; exit 1; fi; \
		sleep 0.1; \
	done; \
	ADDR=$$(cat /tmp/chainaudit-stream-addr) && \
	/tmp/streamfeed replay -in /tmp/chainaudit-stream.jsonl -url "http://$$ADDR" -dataset live && \
	curl -sf "http://$$ADDR/v1/healthz" | grep -q '"watermark"' && \
	for q in 'ppe?format=text' 'lowfee?format=text' 'ppe?format=text&window=20' 'lowfee?format=text&window=20'; do \
		curl -sf -X POST "http://$$ADDR/v1/audits/$$q&dataset=main" > /tmp/chainaudit-stream-batch.txt && \
		curl -sf -X POST "http://$$ADDR/v1/audits/$$q&dataset=live" > /tmp/chainaudit-stream-live.txt && \
		cmp /tmp/chainaudit-stream-batch.txt /tmp/chainaudit-stream-live.txt || \
		{ echo "smoke-stream: $$q diverged between batch and stream"; exit 1; }; \
	done

# smoke-live closes the streaming loop over real processes: chainobserver
# replays a gendata chain through a two-node p2p network and ships what the
# watcher observes into chainauditd over HTTP, teeing its own recording;
# streamfeed then replays that recording into a second data set. The live
# feed, the replay of its recording, and the CSV-loaded batch reference must
# all serve byte-identical audits — full chain and sliding window.
smoke-live:
	$(GO) build -o /tmp/chainauditd ./cmd/chainauditd
	$(GO) build -o /tmp/chainobserver ./cmd/chainobserver
	$(GO) build -o /tmp/streamfeed ./cmd/streamfeed
	$(GO) run ./cmd/gendata -set C -seed 9 -hours 5 -out /tmp/chainaudit-live-chain.csv > /dev/null
	rm -f /tmp/chainaudit-live-addr
	/tmp/chainauditd -addr 127.0.0.1:0 -ready-file /tmp/chainaudit-live-addr \
		-chain main=/tmp/chainaudit-live-chain.csv 2> /tmp/chainaudit-live-log.txt & \
	DPID=$$!; trap 'kill $$DPID 2>/dev/null' EXIT; \
	tries=0; until [ -s /tmp/chainaudit-live-addr ]; do \
		tries=$$((tries+1)); \
		if [ $$tries -gt 1200 ]; then echo "chainauditd never became ready"; cat /tmp/chainaudit-live-log.txt; exit 1; fi; \
		if ! kill -0 $$DPID 2>/dev/null; then echo "chainauditd died"; cat /tmp/chainaudit-live-log.txt; exit 1; fi; \
		sleep 0.1; \
	done; \
	ADDR=$$(cat /tmp/chainaudit-live-addr) && \
	/tmp/chainobserver -chain /tmp/chainaudit-live-chain.csv -url "http://$$ADDR" \
		-dataset live -record /tmp/chainaudit-live.jsonl -batch 16 && \
	/tmp/streamfeed replay -in /tmp/chainaudit-live.jsonl -url "http://$$ADDR" -dataset replay && \
	for q in 'ppe?format=text' 'lowfee?format=text' 'ppe?format=text&window=20' 'lowfee?format=text&window=20'; do \
		curl -sf -X POST "http://$$ADDR/v1/audits/$$q&dataset=live" > /tmp/chainaudit-live-feed.txt && \
		curl -sf -X POST "http://$$ADDR/v1/audits/$$q&dataset=replay" > /tmp/chainaudit-live-replay.txt && \
		curl -sf -X POST "http://$$ADDR/v1/audits/$$q&dataset=main" > /tmp/chainaudit-live-batch.txt && \
		cmp /tmp/chainaudit-live-feed.txt /tmp/chainaudit-live-replay.txt || \
		{ echo "smoke-live: $$q diverged between live feed and replayed recording"; exit 1; }; \
		cmp /tmp/chainaudit-live-feed.txt /tmp/chainaudit-live-batch.txt || \
		{ echo "smoke-live: $$q diverged between live feed and batch reference"; exit 1; }; \
	done

# smoke-crash pins the durability headline invariant (DESIGN.md §13) over
# real processes and a real SIGKILL: boot chainauditd with a WAL directory,
# run a full live observer feed into a reference data set (teeing the exact
# frames it ships), replay a mid-stream prefix of that recording into a
# second set, kill -9 the daemon, restart it over the same directory, and
# resume the observer against the recovered watermark. The resumed set, the
# WAL-recovered reference set, and the CSV-loaded batch set must serve
# byte-identical audits — full chain and sliding window — and the resumed
# set's snapshot and block counts must equal the uninterrupted one's, which
# pins every snapshot frame (zero lost, zero duplicated).
smoke-crash:
	$(GO) build -o /tmp/chainauditd ./cmd/chainauditd
	$(GO) build -o /tmp/chainobserver ./cmd/chainobserver
	$(GO) build -o /tmp/streamfeed ./cmd/streamfeed
	$(GO) run ./cmd/gendata -set C -seed 9 -hours 5 -out /tmp/chainaudit-crash-chain.csv > /dev/null
	rm -rf /tmp/chainaudit-crash-wal /tmp/chainaudit-crash-addr /tmp/chainaudit-crash-addr2
	mkdir -p /tmp/chainaudit-crash-wal
	/tmp/chainauditd -addr 127.0.0.1:0 -ready-file /tmp/chainaudit-crash-addr \
		-chain main=/tmp/chainaudit-crash-chain.csv -stream-dir /tmp/chainaudit-crash-wal \
		-stream-checkpoint 4 2> /tmp/chainaudit-crash-log.txt & \
	DPID=$$!; DPID2=; trap 'kill $$DPID $$DPID2 2>/dev/null' EXIT; \
	tries=0; until [ -s /tmp/chainaudit-crash-addr ]; do \
		tries=$$((tries+1)); \
		if [ $$tries -gt 1200 ]; then echo "chainauditd never became ready"; cat /tmp/chainaudit-crash-log.txt; exit 1; fi; \
		if ! kill -0 $$DPID 2>/dev/null; then echo "chainauditd died"; cat /tmp/chainaudit-crash-log.txt; exit 1; fi; \
		sleep 0.1; \
	done; \
	ADDR=$$(cat /tmp/chainaudit-crash-addr) && \
	/tmp/chainobserver -chain /tmp/chainaudit-crash-chain.csv -url "http://$$ADDR" \
		-dataset ref -record /tmp/chainaudit-crash.jsonl -batch 4 && \
	head -n 3 /tmp/chainaudit-crash.jsonl > /tmp/chainaudit-crash-part1.jsonl && \
	/tmp/streamfeed replay -in /tmp/chainaudit-crash-part1.jsonl -url "http://$$ADDR" -dataset live && \
	kill -9 $$DPID && \
	/tmp/chainauditd -addr 127.0.0.1:0 -ready-file /tmp/chainaudit-crash-addr2 \
		-chain main=/tmp/chainaudit-crash-chain.csv -stream-dir /tmp/chainaudit-crash-wal \
		-stream-checkpoint 4 2> /tmp/chainaudit-crash-log2.txt & \
	DPID2=$$!; \
	tries=0; until [ -s /tmp/chainaudit-crash-addr2 ]; do \
		tries=$$((tries+1)); \
		if [ $$tries -gt 1200 ]; then echo "chainauditd never recovered"; cat /tmp/chainaudit-crash-log2.txt; exit 1; fi; \
		if ! kill -0 $$DPID2 2>/dev/null; then echo "chainauditd died on recovery"; cat /tmp/chainaudit-crash-log2.txt; exit 1; fi; \
		sleep 0.1; \
	done; \
	ADDR2=$$(cat /tmp/chainaudit-crash-addr2) && \
	curl -sf "http://$$ADDR2/v1/healthz" | grep -q '"recovery"' && \
	/tmp/chainobserver -chain /tmp/chainaudit-crash-chain.csv -url "http://$$ADDR2" \
		-dataset live -batch 4 -resume > /tmp/chainaudit-crash-resume.txt && \
	grep -q 'resuming dataset live above recovered height' /tmp/chainaudit-crash-resume.txt && \
	curl -sf "http://$$ADDR2/v1/healthz" | sed 's/},{/}\n{/g' > /tmp/chainaudit-crash-health.txt && \
	SNAP_LIVE=$$(grep '"name":"live"' /tmp/chainaudit-crash-health.txt | sed -n 's/.*"snapshots":\([0-9]*\).*/\1/p') && \
	SNAP_REF=$$(grep '"name":"ref"' /tmp/chainaudit-crash-health.txt | sed -n 's/.*"snapshots":\([0-9]*\).*/\1/p') && \
	if [ -z "$$SNAP_LIVE" ] || [ "$$SNAP_LIVE" != "$$SNAP_REF" ]; then \
		echo "smoke-crash: resumed snapshots '$$SNAP_LIVE' != uninterrupted '$$SNAP_REF' (frames lost or duplicated)"; exit 1; \
	fi; \
	LEN_LIVE=$$(grep '"name":"live"' /tmp/chainaudit-crash-health.txt | sed -n 's/.*"index_len":\([0-9]*\).*/\1/p') && \
	LEN_REF=$$(grep '"name":"ref"' /tmp/chainaudit-crash-health.txt | sed -n 's/.*"index_len":\([0-9]*\).*/\1/p') && \
	if [ -z "$$LEN_LIVE" ] || [ "$$LEN_LIVE" != "$$LEN_REF" ]; then \
		echo "smoke-crash: resumed index length '$$LEN_LIVE' != uninterrupted '$$LEN_REF'"; exit 1; \
	fi; \
	for q in 'ppe?format=text' 'lowfee?format=text' 'ppe?format=text&window=20' 'lowfee?format=text&window=20'; do \
		curl -sf -X POST "http://$$ADDR2/v1/audits/$$q&dataset=live" > /tmp/chainaudit-crash-live.txt && \
		curl -sf -X POST "http://$$ADDR2/v1/audits/$$q&dataset=ref" > /tmp/chainaudit-crash-ref.txt && \
		curl -sf -X POST "http://$$ADDR2/v1/audits/$$q&dataset=main" > /tmp/chainaudit-crash-batch.txt && \
		cmp /tmp/chainaudit-crash-live.txt /tmp/chainaudit-crash-ref.txt || \
		{ echo "smoke-crash: $$q diverged between resumed feed and uninterrupted feed"; exit 1; }; \
		cmp /tmp/chainaudit-crash-live.txt /tmp/chainaudit-crash-batch.txt || \
		{ echo "smoke-crash: $$q diverged between resumed feed and batch reference"; exit 1; }; \
	done

# smoke-multi pins the multi-source observation invariants in process: two
# concurrent observers with different chaos specs — one behind a planted 30s
# lag — feed one shared set. The merged index and PPE audit must be
# byte-identical to a single-source baseline over the same chain (the merged
# min-time view is lag-invariant because the clean source always sees first),
# and the divergence audit must flag exactly the planted laggard.
smoke-multi:
	$(GO) build -o /tmp/chainobserver ./cmd/chainobserver
	$(GO) run ./cmd/gendata -set C -seed 9 -hours 5 -out /tmp/chainaudit-multi-chain.csv > /dev/null
	/tmp/chainobserver -chain /tmp/chainaudit-multi-chain.csv -inprocess -batch 16 \
		> /tmp/chainaudit-multi-single.txt
	/tmp/chainobserver -chain /tmp/chainaudit-multi-chain.csv -inprocess -batch 16 \
		-sources 2 -source-lag s2=30s -source-chaos 's2=seed=5,p2p.dup=0.2' \
		> /tmp/chainaudit-multi-double.txt
	sed -n '/^in-process index:/,/^$$/p' /tmp/chainaudit-multi-single.txt > /tmp/chainaudit-multi-single-audit.txt
	sed -n '/^in-process index:/,/^$$/p' /tmp/chainaudit-multi-double.txt > /tmp/chainaudit-multi-double-audit.txt
	cmp /tmp/chainaudit-multi-single-audit.txt /tmp/chainaudit-multi-double-audit.txt || \
		{ echo "smoke-multi: merged audit diverged from single-source baseline"; exit 1; }
	grep -q 'flagged: s2$$' /tmp/chainaudit-multi-double.txt || \
		{ echo "smoke-multi: divergence did not flag exactly the planted laggard:"; \
		  grep '^divergence:' /tmp/chainaudit-multi-double.txt; exit 1; }

clean:
	$(GO) clean ./...
	rm -f lint.json
