GO ?= go

.PHONY: check build vet test race bench bench-key reproduce smoke-metrics clean

# check is the tier-1 gate: vet, build, the full test suite under the
# race detector, and the metrics manifest smoke test.
check: vet build race smoke-metrics

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every experiment benchmark; bench-key just the two the
# shared-index refactor is measured by (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

bench-key:
	$(GO) test -bench='BenchmarkFig07PPE|BenchmarkTable2SelfInterest' -benchtime=3x -run=^$$ .

reproduce:
	$(GO) run ./cmd/reproduce

# smoke-metrics runs one small experiment with -metrics and validates the
# emitted manifest against the internal/obs schema, keeping the
# observability surface from rotting.
smoke-metrics:
	$(GO) run ./cmd/reproduce -exp fig7 -scale 0.1 -metrics /tmp/chainaudit-metrics.json > /dev/null
	$(GO) run ./cmd/reproduce -validate-metrics /tmp/chainaudit-metrics.json

clean:
	$(GO) clean ./...
