GO ?= go

.PHONY: check build vet test race bench bench-key reproduce smoke-metrics smoke-chaos clean

# check is the tier-1 gate: vet, build, the full test suite under the
# race detector, and the metrics and chaos smoke tests.
check: vet build race smoke-metrics smoke-chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every experiment benchmark; bench-key just the two the
# shared-index refactor is measured by (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

bench-key:
	$(GO) test -bench='BenchmarkFig07PPE|BenchmarkTable2SelfInterest' -benchtime=3x -run=^$$ .

reproduce:
	$(GO) run ./cmd/reproduce

# smoke-metrics runs one small experiment with -metrics and validates the
# emitted manifest against the internal/obs schema, keeping the
# observability surface from rotting.
smoke-metrics:
	$(GO) run ./cmd/reproduce -exp fig7 -scale 0.1 -metrics /tmp/chainaudit-metrics.json > /dev/null
	$(GO) run ./cmd/reproduce -validate-metrics /tmp/chainaudit-metrics.json

# smoke-chaos exercises the fault-injection layer end to end. The zero-rate
# leg pins the tentpole invariant — a seeded plan with all rates at zero must
# leave stdout byte-identical to a plain run (wall-clock lines stripped).
# The fault leg must complete despite injected faults, actually fire at least
# one (-require-faults), and emit a manifest that validates and records them.
smoke-chaos:
	$(GO) run ./cmd/reproduce -exp table1,fig9 -scale 0.1 > /tmp/chainaudit-chaos-base.txt
	$(GO) run ./cmd/reproduce -exp table1,fig9 -scale 0.1 -chaos seed=77 > /tmp/chainaudit-chaos-zero.txt
	grep -v -e '^data sets ready' -e '^done:' /tmp/chainaudit-chaos-base.txt > /tmp/chainaudit-chaos-base.strip.txt
	grep -v -e '^data sets ready' -e '^done:' /tmp/chainaudit-chaos-zero.txt > /tmp/chainaudit-chaos-zero.strip.txt
	cmp /tmp/chainaudit-chaos-base.strip.txt /tmp/chainaudit-chaos-zero.strip.txt
	$(GO) run ./cmd/reproduce -exp table1,fig4,fig9 -scale 0.1 \
		-chaos 'seed=3,pool.outage=0.2,obs.miss=0.25,snap.blackout=0.3,snap.window=15m' \
		-require-faults -metrics /tmp/chainaudit-chaos-metrics.json > /dev/null
	$(GO) run ./cmd/reproduce -validate-metrics /tmp/chainaudit-chaos-metrics.json

clean:
	$(GO) clean ./...
