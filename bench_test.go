// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §3 for the experiment index). NewSuite goes through the
// process-local dataset cache, so the data sets are simulated once per
// process at a small scale; the shared suite additionally reuses one audit
// index per data set, so each benchmark measures the audit/analysis
// computation itself. Fig01, Table5, and the policy-gap ablation run their
// own simulations per iteration by design (the simulation *is* the
// experiment there).
//
// Run everything:
//
//	go test -bench=. -benchmem
package main

import (
	"sync"
	"testing"

	"chainaudit/internal/core"
	"chainaudit/internal/experiments"
	"chainaudit/internal/index"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

func getBenchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		// The dataset cache dedupes the underlying simulations, so this
		// once guard only preserves the suite's shared indexes across
		// benchmarks.
		benchSuite, benchErr = experiments.NewSuite(2026, 0.25)
	})
	if benchErr != nil {
		b.Fatalf("building suite: %v", benchErr)
	}
	return benchSuite
}

// BenchmarkBlockIndexBuild measures the one-time cost every indexed audit
// amortizes: attributing and position-analyzing all of data set C.
func BenchmarkBlockIndexBuild(b *testing.B) {
	s := getBenchSuite(b)
	c := s.C.Result.Chain
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ix := index.Build(c, s.C.Registry); ix.Len() != c.Len() {
			b.Fatal("short index")
		}
	}
}

// BenchmarkBlockIndexAppendIncremental measures the streaming counterpart
// of BenchmarkBlockIndexBuild: growing data set C's index block by block
// through AppendBlock (fresh chain, same attribution and position analysis,
// plus the per-append share refresh the batch path does once).
func BenchmarkBlockIndexAppendIncremental(b *testing.B) {
	s := getBenchSuite(b)
	blocks := s.C.Result.Chain.Blocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := index.NewIncremental(s.C.Registry)
		for _, blk := range blocks {
			if _, err := ix.AppendBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
		if ix.Len() != len(blocks) {
			b.Fatal("short index")
		}
	}
}

// BenchmarkWindowAuditPPE measures one sliding-window re-audit over the
// last 32 blocks of data set C — the per-request cost of the streaming
// audit endpoints after an append invalidates the result cache.
func BenchmarkWindowAuditPPE(b *testing.B) {
	s := getBenchSuite(b)
	ix := s.CAuditor().Index()
	w := core.NewWindowAuditor(0)
	for i := 0; i < ix.Len(); i++ {
		if err := w.ObserveBlock(ix.Record(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := w.AuditPPE(32, core.AuditOptions{}); rep.Overall.N == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkSuiteFromCache measures a warm NewSuite: all three data sets
// served from the process-local cache.
func BenchmarkSuiteFromCache(b *testing.B) {
	getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSuite(2026, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01NormShift(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig01NormShift(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table1(); len(tbl.Rows) != 3 {
			b.Fatal("table 1 rows")
		}
	}
}

func BenchmarkFig02PoolShares(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Fig02PoolShares(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig03Congestion(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb, fc, cum := s.Fig03Congestion()
		if len(fb.Series) == 0 || len(fc.Series) == 0 || len(cum.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig04DelaysFees(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fa, fb, fc := s.Fig04DelaysFees()
		if len(fa.Series) == 0 || len(fb.Series) == 0 || len(fc.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig05FeeDelay(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Fig05FeeDelay(); len(f.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig06ViolationPairs(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, non := s.Fig06ViolationPairs(30)
		if len(all.Series) != 3 || len(non.Series) != 3 {
			b.Fatal("series")
		}
	}
}

func BenchmarkFig07PPE(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, overall := s.Fig07PPE(); overall.N == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig08PoolWallets(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Fig08PoolWallets(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable2SelfInterest(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, findings, err := s.Table2SelfInterest(); err != nil || len(findings) == 0 {
			b.Fatalf("findings=%d err=%v", len(findings), err)
		}
	}
}

func BenchmarkTable3Scam(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, rows, err := s.Table3Scam(); err != nil || len(rows) == 0 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

func BenchmarkTable4DarkFee(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, rows := s.Table4DarkFee(); len(rows) != 5 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkTable5FeeRevenue(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, rows, err := s.Table5FeeRevenue(); err != nil || len(rows) != 5 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

func BenchmarkFig09MempoolB(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Fig09MempoolB(); len(f.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig10FeeratesByPool(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Fig10FeeratesByPool(); len(f.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig11CongestionFeesB(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Fig11CongestionFeesB(); len(f.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig12FeeDelayB(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Fig12FeeDelayB(); len(f.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig13ScamWindowShares(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Fig13ScamWindowShares(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig14AccelFees(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f, _ := s.Fig14AccelFees(); len(f.Series) != 2 {
			b.Fatal("series")
		}
	}
}

func BenchmarkNormIIICensus(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.NormIIICensus(); tbl == nil {
			b.Fatal("nil")
		}
	}
}

func BenchmarkExtFeeEstimatorBias(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExtFeeEstimatorBias(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtCensorshipPower(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExtCensorshipPower(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtDelaySignificance(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExtDelaySignificance(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtNormComparison(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExtNormComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPolicyGap(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationPolicyGap(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBinomApprox(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.AblationBinomApprox(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAblationSnapshotSampling(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.AblationSnapshotSampling(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkExtConflictOutcomes(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExtConflictOutcomes(); err != nil {
			b.Fatal(err)
		}
	}
}
